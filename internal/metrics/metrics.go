// Package metrics aggregates per-run results: per-job response and execution
// times, per-class averages (the quantities Figs. 4, 6, 9, 10 plot), the
// workload execution time and multiprogramming level (Tables 3-4), and the
// scheduling stability statistics (Table 2).
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
	"pdpasim/internal/trace"
)

// JobResult is the outcome of one job.
type JobResult struct {
	ID      int
	Class   app.Class
	Request int
	// Submit is when the job entered the queuing system; Start is when it
	// began running; End is when it completed.
	Submit, Start, End sim.Time
	// CPUSeconds is the integral of the job's processor allocation over its
	// run (the CPU time it consumed).
	CPUSeconds float64
	// AvgAlloc is CPUSeconds divided by execution time.
	AvgAlloc float64
	// Slowdown is the classic scheduling metric: response time divided by
	// the job's dedicated-machine execution time at its requested size
	// (1 = as good as a dedicated machine).
	Slowdown float64
}

// Response is End - Submit: the time the user waits (the paper's headline
// metric).
func (j JobResult) Response() sim.Time { return j.End - j.Submit }

// Execution is End - Start.
func (j JobResult) Execution() sim.Time { return j.End - j.Start }

// RunResult is everything measured from one workload × policy run.
type RunResult struct {
	Policy   string
	Workload string
	// Load is the workload's calibrated demand fraction.
	Load float64
	// MPL is the configured (fixed or base) multiprogramming level.
	MPL  int
	NCPU int
	Seed int64

	Jobs []JobResult

	// Makespan is the time of the last completion (the workload execution
	// time measured from time zero; submissions start at zero).
	Makespan sim.Time
	// MaxMPL is the highest multiprogramming level reached.
	MaxMPL int
	// AvgMPL is the time-weighted average multiprogramming level.
	AvgMPL float64
	// MPLTimeline is the multiprogramming level over time (Fig. 8).
	MPLTimeline []trace.TimePoint
	// Stability carries Table 2's migration/burst statistics.
	Stability trace.Stats
	// Recorder is the run's execution trace (present when the run kept
	// bursts), usable for Fig. 5-style rendering.
	Recorder *trace.Recorder
}

// byClass folds a per-job scalar into per-class means.
func (r *RunResult) byClass(f func(JobResult) float64) map[app.Class]float64 {
	sums := map[app.Class]*stats.Summary{}
	for _, j := range r.Jobs {
		s, ok := sums[j.Class]
		if !ok {
			s = &stats.Summary{}
			sums[j.Class] = s
		}
		s.Add(f(j))
	}
	out := make(map[app.Class]float64, len(sums))
	for c, s := range sums {
		out[c] = s.Mean()
	}
	return out
}

// ResponseByClass returns the average response time (seconds) per class.
func (r *RunResult) ResponseByClass() map[app.Class]float64 {
	return r.byClass(func(j JobResult) float64 { return j.Response().Seconds() })
}

// ExecutionByClass returns the average execution time (seconds) per class.
func (r *RunResult) ExecutionByClass() map[app.Class]float64 {
	return r.byClass(func(j JobResult) float64 { return j.Execution().Seconds() })
}

// AvgAllocByClass returns the average processor allocation per class.
func (r *RunResult) AvgAllocByClass() map[app.Class]float64 {
	return r.byClass(func(j JobResult) float64 { return j.AvgAlloc })
}

// SlowdownByClass returns the mean slowdown per class.
func (r *RunResult) SlowdownByClass() map[app.Class]float64 {
	return r.byClass(func(j JobResult) float64 { return j.Slowdown })
}

// SlowdownStats returns the distribution of per-job slowdowns.
func (r *RunResult) SlowdownStats() *stats.Summary {
	var s stats.Summary
	for _, j := range r.Jobs {
		if j.Slowdown > 0 {
			s.Add(j.Slowdown)
		}
	}
	return &s
}

// CPUSecondsTotal returns the total CPU time consumed by all jobs.
func (r *RunResult) CPUSecondsTotal() float64 {
	total := 0.0
	for _, j := range r.Jobs {
		total += j.CPUSeconds
	}
	return total
}

// Classes returns the classes present, in canonical order.
func (r *RunResult) Classes() []app.Class {
	seen := map[app.Class]bool{}
	for _, j := range r.Jobs {
		seen[j.Class] = true
	}
	var out []app.Class
	for _, c := range app.AllClasses() {
		if seen[c] {
			out = append(out, c)
		}
	}
	return out
}

// MinMaxAllocByClass returns the smallest and largest average allocation any
// job of the class received — the fairness measure the paper applies to
// Equal_efficiency ("from a minimum of 2 processors up to a maximum of 28").
func (r *RunResult) MinMaxAllocByClass(c app.Class) (lo, hi float64) {
	first := true
	for _, j := range r.Jobs {
		if j.Class != c {
			continue
		}
		if first || j.AvgAlloc < lo {
			lo = j.AvgAlloc
		}
		if first || j.AvgAlloc > hi {
			hi = j.AvgAlloc
		}
		first = false
	}
	return lo, hi
}

// String renders a compact result table.
func (r *RunResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s / %s load=%.0f%% ml=%d: makespan=%.0fs maxML=%d avgML=%.1f\n",
		r.Policy, r.Workload, r.Load*100, r.MPL, r.Makespan.Seconds(), r.MaxMPL, r.AvgMPL)
	resp := r.ResponseByClass()
	exec := r.ExecutionByClass()
	alloc := r.AvgAllocByClass()
	for _, c := range r.Classes() {
		fmt.Fprintf(&sb, "  %-8s resp=%8.1fs exec=%8.1fs cpus=%5.1f\n",
			c, resp[c], exec[c], alloc[c])
	}
	return sb.String()
}

// SortJobs orders jobs by ID.
func (r *RunResult) SortJobs() {
	sort.Slice(r.Jobs, func(i, j int) bool { return r.Jobs[i].ID < r.Jobs[j].ID })
}

// IntegrateAllocation computes the CPU-seconds a job consumed from its
// recorded allocation history and its completion time.
func IntegrateAllocation(history []trace.TimePoint, end sim.Time) float64 {
	total := 0.0
	for i, p := range history {
		if p.At >= end {
			break
		}
		until := end
		if i+1 < len(history) && history[i+1].At < end {
			until = history[i+1].At
		}
		if until > p.At {
			total += float64(p.Value) * (until - p.At).Seconds()
		}
	}
	return total
}

// TimeWeightedMPL computes the average multiprogramming level of a timeline
// over [0, end].
func TimeWeightedMPL(tl []trace.TimePoint, end sim.Time) float64 {
	var tw stats.TimeWeighted
	tw.Observe(0, 0)
	for _, p := range tl {
		tw.Observe(p.At.Seconds(), float64(p.Value))
	}
	tw.Finish(end.Seconds())
	return tw.Mean()
}
