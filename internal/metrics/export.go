package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV writes the per-job results as CSV, one row per job, with a
// header. The columns are the raw material of every figure in the paper.
func (r *RunResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"job", "app", "request", "submit_s", "start_s", "end_s",
		"response_s", "execution_s", "cpu_seconds", "avg_processors",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, j := range r.Jobs {
		row := []string{
			fmt.Sprint(j.ID),
			j.Class.String(),
			fmt.Sprint(j.Request),
			fmt.Sprintf("%.3f", j.Submit.Seconds()),
			fmt.Sprintf("%.3f", j.Start.Seconds()),
			fmt.Sprintf("%.3f", j.End.Seconds()),
			fmt.Sprintf("%.3f", j.Response().Seconds()),
			fmt.Sprintf("%.3f", j.Execution().Seconds()),
			fmt.Sprintf("%.1f", j.CPUSeconds),
			fmt.Sprintf("%.2f", j.AvgAlloc),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Export is the JSON-friendly form of a RunResult.
type Export struct {
	Policy     string             `json:"policy"`
	Workload   string             `json:"workload"`
	Load       float64            `json:"load"`
	MPL        int                `json:"mpl"`
	NCPU       int                `json:"ncpu"`
	Seed       int64              `json:"seed"`
	MakespanS  float64            `json:"makespan_s"`
	MaxMPL     int                `json:"max_mpl"`
	AvgMPL     float64            `json:"avg_mpl"`
	Migrations int                `json:"migrations"`
	AvgBurstMS float64            `json:"avg_burst_ms"`
	Util       float64            `json:"utilization"`
	Response   map[string]float64 `json:"response_s_by_app"`
	Execution  map[string]float64 `json:"execution_s_by_app"`
	Jobs       []ExportJob        `json:"jobs"`
}

// ExportJob is one job in the JSON export.
type ExportJob struct {
	ID         int     `json:"id"`
	App        string  `json:"app"`
	Request    int     `json:"request"`
	SubmitS    float64 `json:"submit_s"`
	StartS     float64 `json:"start_s"`
	EndS       float64 `json:"end_s"`
	ResponseS  float64 `json:"response_s"`
	ExecutionS float64 `json:"execution_s"`
	CPUSeconds float64 `json:"cpu_seconds"`
	AvgProcs   float64 `json:"avg_processors"`
}

// ToExport converts the result to its serializable form.
func (r *RunResult) ToExport() Export {
	e := Export{
		Policy:     r.Policy,
		Workload:   r.Workload,
		Load:       r.Load,
		MPL:        r.MPL,
		NCPU:       r.NCPU,
		Seed:       r.Seed,
		MakespanS:  r.Makespan.Seconds(),
		MaxMPL:     r.MaxMPL,
		AvgMPL:     r.AvgMPL,
		Migrations: r.Stability.Migrations,
		AvgBurstMS: r.Stability.AvgBurst.Seconds() * 1000,
		Util:       r.Stability.Utilization,
		Response:   map[string]float64{},
		Execution:  map[string]float64{},
	}
	for c, v := range r.ResponseByClass() {
		e.Response[c.String()] = v
	}
	for c, v := range r.ExecutionByClass() {
		e.Execution[c.String()] = v
	}
	for _, j := range r.Jobs {
		e.Jobs = append(e.Jobs, ExportJob{
			ID:         j.ID,
			App:        j.Class.String(),
			Request:    j.Request,
			SubmitS:    j.Submit.Seconds(),
			StartS:     j.Start.Seconds(),
			EndS:       j.End.Seconds(),
			ResponseS:  j.Response().Seconds(),
			ExecutionS: j.Execution().Seconds(),
			CPUSeconds: j.CPUSeconds,
			AvgProcs:   j.AvgAlloc,
		})
	}
	return e
}

// WriteJSON writes the result as indented JSON.
func (r *RunResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.ToExport())
}
