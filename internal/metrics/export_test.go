package metrics

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

func exportFixture() *RunResult {
	return &RunResult{
		Policy: "PDPA", Workload: "w3", Load: 1.0, MPL: 4, NCPU: 60, Seed: 7,
		Jobs: []JobResult{
			{ID: 0, Class: app.BT, Request: 30, Submit: 0, Start: sim.Second,
				End: 11 * sim.Second, CPUSeconds: 200, AvgAlloc: 20},
			{ID: 1, Class: app.Apsi, Request: 2, Submit: 2 * sim.Second,
				Start: 3 * sim.Second, End: 9 * sim.Second, CPUSeconds: 12, AvgAlloc: 2},
		},
		Makespan: 11 * sim.Second,
		MaxMPL:   2,
		AvgMPL:   1.5,
		Stability: trace.Stats{
			Migrations: 3, AvgBurst: 1500 * sim.Millisecond, Utilization: 0.8,
		},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "job" || rows[0][6] != "response_s" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][1] != "bt.A" || rows[1][6] != "11.000" {
		t.Fatalf("row1 = %v", rows[1])
	}
	if rows[2][1] != "apsi" || rows[2][7] != "6.000" {
		t.Fatalf("row2 = %v", rows[2])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := exportFixture().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var e Export
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Policy != "PDPA" || e.MakespanS != 11 || e.Migrations != 3 {
		t.Fatalf("export = %+v", e)
	}
	if len(e.Jobs) != 2 || e.Jobs[0].App != "bt.A" || e.Jobs[1].ResponseS != 7 {
		t.Fatalf("jobs = %+v", e.Jobs)
	}
	if e.Response["bt.A"] != 11 {
		t.Fatalf("response map = %v", e.Response)
	}
	if e.AvgBurstMS != 1500 {
		t.Fatalf("avg burst = %v", e.AvgBurstMS)
	}
}

func TestWriteJSONStable(t *testing.T) {
	var a, b bytes.Buffer
	r := exportFixture()
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("JSON export not deterministic")
	}
	if !strings.Contains(a.String(), "\"avg_processors\": 20") {
		t.Fatalf("missing field: %s", a.String())
	}
}
