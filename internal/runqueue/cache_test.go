package runqueue

import (
	"testing"

	"pdpasim/internal/leakcheck"
)

// TestCacheEvictionCounted: results displaced from the bounded LRU cache are
// counted in pdpad_cache_evictions_total, the evicted spec re-simulates on
// resubmission, and a still-cached spec keeps hitting.
func TestCacheEvictionCounted(t *testing.T) {
	leakcheck.Check(t)
	p := New(Config{BaseWorkers: 1, MaxWorkers: 1, CacheSize: 2, Simulate: instantSim})
	ids := make([]string, 0, 3)
	for seed := int64(1); seed <= 3; seed++ {
		r, err := p.Submit(tinySpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, p, r.ID, Done)
		ids = append(ids, r.ID)
	}
	st := p.Stats()
	if st.CacheEvictions != 1 {
		t.Fatalf("evictions %d, want 1 (3 results through a 2-entry cache)", st.CacheEvictions)
	}
	if v, ok := p.Metrics().Value("pdpad_cache_evictions_total", ""); !ok || v != 1 {
		t.Fatalf("pdpad_cache_evictions_total = %v, %v; want 1, true", v, ok)
	}

	// Seed 1 was evicted: resubmitting re-simulates under a fresh ID.
	r, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHit || r.Deduped || r.ID == ids[0] {
		t.Fatalf("evicted spec resolved to %+v, want a fresh run", r)
	}
	waitState(t, p, r.ID, Done)

	// Seed 3 is still cached (seed 2 was displaced by seed 1's re-run).
	hit, err := p.Submit(tinySpec(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.ID != ids[2] {
		t.Fatalf("cached spec resolved to %+v, want cache hit on %s", hit, ids[2])
	}
	if got := p.Stats().CacheEvictions; got != 2 {
		t.Fatalf("evictions %d, want 2 after the re-run displaced another entry", got)
	}
	drainPool(t, p)
}
