package runqueue

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/internal/leakcheck"
)

// tinySpec is a fast real-simulation spec; vary seed to get distinct keys.
func tinySpec(seed int64) Spec {
	return Spec{
		Workload: WorkloadSpec{Mix: "w1", Load: 0.6, WindowS: 60, Seed: seed},
		Options:  RunOptions{Policy: "equip", Seed: seed},
	}
}

// stubOutcome runs one real tiny simulation so stubbed SimulateFuncs can
// return a structurally valid Outcome.
var stubOutcome = sync.OnceValues(func() (*pdpasim.Outcome, error) {
	return pdpasim.RunContext(context.Background(),
		pdpasim.WorkloadSpec{Mix: "w1", Load: 0.4, Window: 30 * time.Second, Seed: 1},
		pdpasim.Options{Policy: pdpasim.Equipartition},
	)
})

// blockingSim returns a SimulateFunc that blocks until release is closed
// (or ctx is cancelled) and counts invocations.
func blockingSim(t *testing.T, calls *atomic.Int64, release <-chan struct{}) SimulateFunc {
	t.Helper()
	return func(ctx context.Context, spec Spec) (*pdpasim.Outcome, error) {
		calls.Add(1)
		select {
		case <-release:
			return stubOutcome()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// waitState polls until the run reaches want or the deadline passes.
func waitState(t *testing.T, p *Pool, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("run %s reached terminal state %s (err %v), want %s",
				id, snap.State, snap.Err, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached state %s", id, want)
	return Snapshot{}
}

func TestSpecKeyCanonicalization(t *testing.T) {
	// Spelling the defaults explicitly must not change the key.
	implicit := Spec{Workload: WorkloadSpec{Mix: "w3"}, Options: RunOptions{Policy: "pdpa"}}
	explicit := Spec{
		Workload: WorkloadSpec{Mix: "w3", Load: 1.0, NCPU: 60, WindowS: 300},
		Options: RunOptions{
			Policy: "pdpa", TargetEff: 0.7, HighEff: 0.9, Step: 4, BaseMPL: 4,
			MaxStableTransitions: 4, NoiseSigma: 0.01,
		},
	}
	if implicit.Key() != explicit.Key() {
		t.Fatal("explicit defaults changed the canonical key")
	}
	// PDPA parameters are irrelevant — and must not split the cache — for
	// non-PDPA policies.
	a := Spec{Workload: WorkloadSpec{Mix: "w1"}, Options: RunOptions{Policy: "irix"}}
	b := Spec{Workload: WorkloadSpec{Mix: "w1"}, Options: RunOptions{Policy: "irix", TargetEff: 0.5}}
	if a.Key() != b.Key() {
		t.Fatal("PDPA params changed an IRIX spec's key")
	}
	// Anything that changes the result changes the key.
	c := Spec{Workload: WorkloadSpec{Mix: "w1", Seed: 9}, Options: RunOptions{Policy: "irix"}}
	if a.Key() == c.Key() {
		t.Fatal("different seeds share a key")
	}
}

func TestSpecValidateSharedPath(t *testing.T) {
	bad := []Spec{
		{Workload: WorkloadSpec{Mix: "w9"}, Options: RunOptions{Policy: "pdpa"}},
		{Workload: WorkloadSpec{Mix: "w1"}, Options: RunOptions{Policy: "bogus"}},
		{Workload: WorkloadSpec{Mix: "w1", Load: -1}, Options: RunOptions{Policy: "pdpa"}},
		{Workload: WorkloadSpec{Mix: "w1", WindowS: -5}, Options: RunOptions{Policy: "pdpa"}},
		{Workload: WorkloadSpec{Mix: "w1"}, Options: RunOptions{Policy: "pdpa", TargetEff: 0.95, HighEff: 0.8}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if err := tinySpec(1).Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	p := New(Config{})
	if _, err := p.Submit(Spec{Workload: WorkloadSpec{Mix: "w9"}, Options: RunOptions{Policy: "pdpa"}}, 0); err == nil {
		t.Fatal("Submit accepted an invalid spec")
	}
}

// TestCacheHitIdenticalSpec: the second submission of an identical spec
// returns without re-simulating.
func TestCacheHitIdenticalSpec(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	close(release) // never block: complete immediately
	p := New(Config{Simulate: blockingSim(t, &calls, release)})

	first, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || first.Deduped {
		t.Fatalf("first submit misclassified: %+v", first)
	}
	done, err := p.Done(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-done

	second, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.ID != first.ID || second.State != Done {
		t.Fatalf("second submit not served from cache: %+v", second)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("simulated %d times, want 1", got)
	}
	snap, err := p.Get(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.ResultJSON) == 0 {
		t.Fatal("cached run has no result")
	}
	s := p.Stats()
	if s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("stats: hits %d misses %d, want 1/1", s.CacheHits, s.CacheMisses)
	}
}

// TestSingleflightConcurrentSubmits: concurrent identical submissions join
// one in-flight run.
func TestSingleflightConcurrentSubmits(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	p := New(Config{Simulate: blockingSim(t, &calls, release)})

	const n = 16
	results := make([]SubmitResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := p.Submit(tinySpec(7), 0)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	close(release)

	deduped := 0
	for _, r := range results {
		if r.ID != results[0].ID {
			t.Fatalf("submissions split across runs: %s vs %s", r.ID, results[0].ID)
		}
		if r.Deduped {
			deduped++
		}
	}
	if deduped != n-1 {
		t.Fatalf("%d of %d submissions deduped, want %d", deduped, n, n-1)
	}
	done, err := p.Done(results[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if got := calls.Load(); got != 1 {
		t.Fatalf("simulated %d times, want 1", got)
	}
}

// TestRealSimulationCacheRoundTrip exercises the default SimulateFunc end to
// end: a real simulation populates the cache, and the cached bytes match a
// direct facade run (determinism).
func TestRealSimulationCacheRoundTrip(t *testing.T) {
	p := New(Config{})
	res, err := p.Submit(tinySpec(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	done, err := p.Done(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	snap, err := p.Get(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Done {
		t.Fatalf("state %s (err %v), want done", snap.State, snap.Err)
	}
	ws, opts := tinySpec(3).Facade()
	direct, err := pdpasim.RunContext(context.Background(), ws, opts)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := direct.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(snap.ResultJSON) {
		t.Fatal("pool result differs from direct facade run")
	}
}

// TestCancellationAbortsRealSimulation: cancelling a running run aborts the
// real simulator mid-flight, promptly.
func TestCancellationAbortsRealSimulation(t *testing.T) {
	p := New(Config{})
	// A deliberately heavy spec: a multi-hour submission window is seconds
	// of real compute, far longer than the cancellation latency.
	heavy := Spec{
		Workload: WorkloadSpec{Mix: "w2", Load: 1.0, WindowS: 4 * 3600, Seed: 11},
		Options:  RunOptions{Policy: "pdpa"},
	}
	res, err := p.Submit(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, res.ID, Running)
	start := time.Now()
	if _, err := p.Cancel(res.ID); err != nil {
		t.Fatal(err)
	}
	done, err := p.Done(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	latency := time.Since(start)
	snap, err := p.Get(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Canceled {
		t.Fatalf("state %s, want canceled", snap.State)
	}
	if !errors.Is(snap.Err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", snap.Err)
	}
	if latency > 5*time.Second {
		t.Fatalf("cancellation took %v; not prompt", latency)
	}
	// A cancelled run must not poison the cache.
	again, err := p.Submit(heavy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit || again.Deduped {
		t.Fatalf("cancelled run satisfied a new submission: %+v", again)
	}
	if _, err := p.Cancel(again.ID); err != nil {
		t.Fatal(err)
	}
}

// TestCancelQueuedRun: a queued run cancels without ever starting.
func TestCancelQueuedRun(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	p := New(Config{BaseWorkers: 1, MaxWorkers: 1, Simulate: blockingSim(t, &calls, release)})
	blocker, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := p.Submit(tinySpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := p.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Canceled {
		t.Fatalf("state %s, want canceled", snap.State)
	}
	if _, err := p.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	done, err := p.Done(blocker.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if got := calls.Load(); got > 1 {
		t.Fatalf("queued run simulated despite cancellation (%d calls)", got)
	}
}

// TestAdmissionHoldsDuringWarmup is the PDPA MPL rule applied to the pool:
// above base concurrency, a queued run is held while any in-flight run is
// still warming up, and admitted once the running set is stable.
func TestAdmissionHoldsDuringWarmup(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	const warmup = 400 * time.Millisecond
	p := New(Config{
		BaseWorkers: 1, MaxWorkers: 2, Warmup: warmup,
		Simulate: blockingSim(t, &calls, release),
	})

	first, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, first.ID, Running)

	second, err := p.Submit(tinySpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Base concurrency is saturated and the first run is inside warm-up:
	// the second must be held even though a slot (max=2) is free.
	time.Sleep(warmup / 4)
	if snap, err := p.Get(second.ID); err != nil || snap.State != Queued {
		t.Fatalf("run admitted during warm-up: state %v err %v", snap.State, err)
	}
	if d := p.Stats().QueueDepth; d != 1 {
		t.Fatalf("queue depth %d, want 1", d)
	}
	// Once the first run is past warm-up the free slot may be handed out —
	// with no new submission or completion to trigger it.
	waitState(t, p, second.ID, Running)
	if got := p.Stats().Inflight; got != 2 {
		t.Fatalf("inflight %d, want 2", got)
	}
}

// TestAdmissionUnconditionalBelowBase: below the base level, admission never
// waits for warm-up (PDPA admits unconditionally below BaseMPL).
func TestAdmissionUnconditionalBelowBase(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	p := New(Config{
		BaseWorkers: 3, MaxWorkers: 3, Warmup: time.Hour,
		Simulate: blockingSim(t, &calls, release),
	})
	ids := make([]string, 3)
	for i := range ids {
		r, err := p.Submit(tinySpec(int64(i+1)), 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = r.ID
	}
	for _, id := range ids {
		waitState(t, p, id, Running)
	}
}

// TestDeadlineWhileRunning: a per-run deadline aborts an overlong simulation.
func TestDeadlineWhileRunning(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{}) // never released: only the deadline can end it
	defer close(release)
	p := New(Config{Simulate: blockingSim(t, &calls, release)})
	res, err := p.Submit(tinySpec(1), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	done, err := p.Done(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	snap, err := p.Get(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Failed || !errors.Is(snap.Err, context.DeadlineExceeded) {
		t.Fatalf("state %s err %v, want failed/deadline", snap.State, snap.Err)
	}
}

// TestGracefulDrain: drain completes in-flight and queued runs, then
// rejects new work, leaving no goroutines behind.
func TestGracefulDrain(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	release := make(chan struct{})
	p := New(Config{BaseWorkers: 1, MaxWorkers: 1, Simulate: blockingSim(t, &calls, release)})
	a, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Submit(tinySpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, a.ID, Running)

	drained := make(chan error, 1)
	go func() { drained <- p.Drain(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // let Drain flip the draining flag
	if _, err := p.Submit(tinySpec(3), 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err %v, want ErrDraining", err)
	}
	close(release) // let the workers finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		snap, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != Done {
			t.Fatalf("run %s state %s after graceful drain, want done", id, snap.State)
		}
	}
}

// TestForcedDrain: an expired drain context cancels the stragglers; the
// cancelled workers' goroutines exit.
func TestForcedDrain(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	p := New(Config{BaseWorkers: 1, MaxWorkers: 1, Simulate: blockingSim(t, &calls, release)})
	a, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Submit(tinySpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, a.ID, Running)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		snap, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != Canceled {
			t.Fatalf("run %s state %s after forced drain, want canceled", id, snap.State)
		}
	}
}

// TestEventsLifecycle: subscribers see queued → running → done in order.
func TestEventsLifecycle(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	p := New(Config{BaseWorkers: 1, MaxWorkers: 1, Simulate: blockingSim(t, &calls, release)})
	blocker, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Submit(tinySpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := p.Subscribe(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	close(release)

	var states []State
	for ev := range ch {
		if ev.RunID != res.ID {
			t.Fatalf("event for wrong run %s", ev.RunID)
		}
		states = append(states, ev.State)
		if ev.State.Terminal() {
			break
		}
	}
	want := []State{Queued, Running, Done}
	if len(states) != len(want) {
		t.Fatalf("states %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states %v, want %v", states, want)
		}
	}
	done, err := p.Done(blocker.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	// Subscribing to a finished run yields its terminal state immediately.
	ch2, unsub2, err := p.Subscribe(blocker.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub2()
	ev, ok := <-ch2
	if !ok || ev.State != Done {
		t.Fatalf("late subscription: %+v ok=%v", ev, ok)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("late subscription channel not closed")
	}
}

// TestCacheEviction: the LRU bound holds and evicted keys re-simulate.
func TestCacheEviction(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	close(release)
	p := New(Config{CacheSize: 2, Simulate: blockingSim(t, &calls, release)})
	for seed := int64(1); seed <= 3; seed++ {
		r, err := p.Submit(tinySpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		done, err := p.Done(r.ID)
		if err != nil {
			t.Fatal(err)
		}
		<-done
	}
	if got := p.Stats().CachedRuns; got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	// Seed 1 was evicted (oldest): resubmitting simulates again.
	r, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHit {
		t.Fatal("evicted entry served a cache hit")
	}
	done, _ := p.Done(r.ID)
	<-done
	if got := calls.Load(); got != 4 {
		t.Fatalf("simulated %d times, want 4", got)
	}
}

// TestQueueLimit: the FIFO bound is enforced.
func TestQueueLimit(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	p := New(Config{BaseWorkers: 1, MaxWorkers: 1, QueueLimit: 1, Simulate: blockingSim(t, &calls, release)})
	if _, err := p.Submit(tinySpec(1), 0); err != nil {
		t.Fatal(err)
	}
	// Give the first submission time to be admitted so the second occupies
	// the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Inflight == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := p.Submit(tinySpec(2), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(tinySpec(3), 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err %v, want ErrQueueFull", err)
	}
}

// TestStatsWallHistogram: completed runs land in the wall-time histogram.
// TestRunTraceStored: a done run retains its serialized decision trace
// (PDPA policy decisions with reasons), and TraceLimit < 0 disables it.
func TestRunTraceStored(t *testing.T) {
	p := New(Config{})
	spec := tinySpec(11)
	spec.Options.Policy = "pdpa"
	r, err := p.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	done, _ := p.Done(r.ID)
	<-done
	snap, err := p.Get(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Done {
		t.Fatalf("run ended %s (err %v)", snap.State, snap.Err)
	}
	if len(snap.TraceJSON) == 0 {
		t.Fatal("done run has no stored decision trace")
	}
	for _, want := range []string{`"kind": "policy_state"`, `"kind": "admit"`, `"reason"`} {
		if !strings.Contains(string(snap.TraceJSON), want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}

	off := New(Config{TraceLimit: -1})
	r2, err := off.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	done2, _ := off.Done(r2.ID)
	<-done2
	snap2, _ := off.Get(r2.ID)
	if len(snap2.TraceJSON) != 0 {
		t.Fatal("tracing disabled but a trace was stored")
	}
}

// TestPoolObserverStream: Config.Observer receives the queued → running →
// done lifecycle as run_state TraceEvents, delivered off the pool lock.
func TestPoolObserverStream(t *testing.T) {
	var mu sync.Mutex
	events := map[string][]string{}
	seen := make(chan struct{}, 16)
	p := New(Config{Observer: pdpasim.ObserverFunc(func(e pdpasim.TraceEvent) {
		if e.Kind != "run_state" {
			t.Errorf("unexpected kind %q", e.Kind)
		}
		mu.Lock()
		events[e.ID] = append(events[e.ID], e.State)
		mu.Unlock()
		seen <- struct{}{}
	})})
	r, err := p.Submit(tinySpec(12), 0)
	if err != nil {
		t.Fatal(err)
	}
	done, _ := p.Done(r.ID)
	<-done
	// Delivery is asynchronous; wait for the terminal event to arrive.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		states := append([]string(nil), events[r.ID]...)
		mu.Unlock()
		if len(states) >= 3 {
			want := []string{"queued", "running", "done"}
			for i, s := range states {
				if s != want[i] {
					t.Fatalf("lifecycle %v, want %v", states, want)
				}
			}
			return
		}
		select {
		case <-seen:
		case <-deadline:
			t.Fatalf("observer saw only %v", states)
		}
	}
}

func TestStatsWallHistogram(t *testing.T) {
	p := New(Config{})
	r, err := p.Submit(tinySpec(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	done, err := p.Done(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	s := p.Stats()
	if s.Wall.Count != 1 || s.Wall.Sum <= 0 {
		t.Fatalf("wall histogram count %d sum %v", s.Wall.Count, s.Wall.Sum)
	}
	if len(s.Wall.Counts) != len(s.Wall.BucketBounds()) {
		t.Fatalf("bucket mismatch: %d counts, %d bounds", len(s.Wall.Counts), len(s.Wall.BucketBounds()))
	}
}
