// Package runqueue turns the one-shot simulator into a servable unit of
// work: a bounded worker pool whose admission controller dogfoods PDPA's
// coordinated multiprogramming-level rule (admit below a base concurrency
// unconditionally; above it, only when a slot is free and every in-flight
// run is past warm-up), a canonical-config-hash result cache with
// singleflight deduplication so identical specs never simulate twice, a FIFO
// queue with per-run deadlines, and graceful drain for shutdown.
//
// The admission rule is the paper's Section 4.3 insight applied to the
// service itself: starting new work while the running set is still settling
// (here: warming up, hot caches being built, memory being touched) degrades
// everyone; once the running set is stable, free capacity may be handed out.
package runqueue

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"pdpasim"
)

// WorkloadSpec is the wire form of pdpasim.WorkloadSpec: what workload to
// generate. Field semantics and defaults match the facade (load 1.0, 60
// CPUs, 300 s window).
type WorkloadSpec struct {
	// Mix is "w1", "w2", "w3", or "w4" (Table 1 of the paper).
	Mix string `json:"mix"`
	// Load is the estimated processor demand fraction; 0 means 1.0.
	Load float64 `json:"load,omitempty"`
	// NCPU is the machine size; 0 means 60.
	NCPU int `json:"ncpu,omitempty"`
	// WindowS is the submission window in seconds; 0 means 300.
	WindowS float64 `json:"window_s,omitempty"`
	// Seed drives the arrival process.
	Seed int64 `json:"seed,omitempty"`
	// UniformRequest forces every job's processor request (the paper's
	// "not tuned" experiments use 30); 0 keeps tuned requests.
	UniformRequest int `json:"uniform_request,omitempty"`
}

// RunOptions is the wire form of pdpasim.Options: how to schedule the
// workload. PDPA parameters left zero take the paper's defaults.
type RunOptions struct {
	// Policy is the scheduling regime: irix, gang, equip, equal_eff,
	// dynamic, pdpa, or pdpa_adaptive.
	Policy string `json:"policy"`
	// TargetEff, HighEff, Step, BaseMPL, and MaxStableTransitions override
	// individual PDPA parameters; zero fields keep the paper's values.
	TargetEff            float64 `json:"target_eff,omitempty"`
	HighEff              float64 `json:"high_eff,omitempty"`
	Step                 int     `json:"step,omitempty"`
	BaseMPL              int     `json:"base_mpl,omitempty"`
	MaxStableTransitions int     `json:"max_stable_transitions,omitempty"`
	// FixedMPL is the fixed multiprogramming level for the non-PDPA
	// regimes; 0 means 4.
	FixedMPL int `json:"fixed_mpl,omitempty"`
	// NoiseSigma is the SelfAnalyzer measurement noise; 0 means the default
	// 1%, negative disables noise.
	NoiseSigma float64 `json:"noise_sigma,omitempty"`
	// Seed drives measurement noise.
	Seed int64 `json:"seed,omitempty"`
	// NUMANodeSize groups CPUs into NUMA nodes; 0 or 1 keeps a flat SMP.
	NUMANodeSize int `json:"numa_node_size,omitempty"`
}

// Spec is one unit of servable work: a workload plus scheduling options.
type Spec struct {
	Workload WorkloadSpec `json:"workload"`
	Options  RunOptions   `json:"options"`
}

// isPDPA reports whether the options select a PDPA regime (whose parameters
// therefore matter for identity).
func (o RunOptions) isPDPA() bool {
	p := pdpasim.Policy(o.Policy)
	return p == pdpasim.PDPA || p == pdpasim.AdaptivePDPA
}

// Facade translates the wire spec into the facade types the simulator
// accepts. Zero PDPA fields inherit the paper's defaults individually, so a
// request may override just target_eff.
func (s Spec) Facade() (pdpasim.WorkloadSpec, pdpasim.Options) {
	ws := pdpasim.WorkloadSpec{
		Mix:            s.Workload.Mix,
		Load:           s.Workload.Load,
		NCPU:           s.Workload.NCPU,
		Window:         time.Duration(s.Workload.WindowS * float64(time.Second)),
		Seed:           s.Workload.Seed,
		UniformRequest: s.Workload.UniformRequest,
	}
	opts := pdpasim.Options{
		Policy:       pdpasim.Policy(s.Options.Policy),
		FixedMPL:     s.Options.FixedMPL,
		NoiseSigma:   s.Options.NoiseSigma,
		Seed:         s.Options.Seed,
		NUMANodeSize: s.Options.NUMANodeSize,
	}
	if s.Options.isPDPA() {
		p := pdpasim.DefaultPDPAParams()
		if s.Options.TargetEff != 0 {
			p.TargetEff = s.Options.TargetEff
		}
		if s.Options.HighEff != 0 {
			p.HighEff = s.Options.HighEff
		}
		if s.Options.Step != 0 {
			p.Step = s.Options.Step
		}
		if s.Options.BaseMPL != 0 {
			p.BaseMPL = s.Options.BaseMPL
		}
		if s.Options.MaxStableTransitions != 0 {
			p.MaxStableTransitions = s.Options.MaxStableTransitions
		}
		opts.PDPA = p
	}
	return ws, opts
}

// Validate checks the spec through the same validation path cmd/pdpasim
// uses: the facade types' Validate methods.
func (s Spec) Validate() error {
	if s.Workload.WindowS < 0 {
		return fmt.Errorf("runqueue: negative window_s %v", s.Workload.WindowS)
	}
	ws, opts := s.Facade()
	if err := ws.Validate(); err != nil {
		return err
	}
	return opts.Validate()
}

// canonical returns the spec with every default made explicit and every
// field that cannot affect the result zeroed, so that equivalent requests —
// however they spell their defaults — hash identically.
func (s Spec) canonical() Spec {
	c := s
	if c.Workload.Load == 0 {
		c.Workload.Load = 1.0
	}
	if c.Workload.NCPU == 0 {
		c.Workload.NCPU = 60
	}
	if c.Workload.WindowS == 0 {
		c.Workload.WindowS = 300
	}
	if c.Options.NoiseSigma == 0 {
		c.Options.NoiseSigma = 0.01
	}
	if c.Options.NoiseSigma < 0 {
		c.Options.NoiseSigma = -1
	}
	if c.Options.NUMANodeSize == 1 {
		c.Options.NUMANodeSize = 0
	}
	if c.Options.isPDPA() {
		// PDPA ignores the fixed level: its own admission governs.
		c.Options.FixedMPL = 0
		p := pdpasim.DefaultPDPAParams()
		if c.Options.TargetEff == 0 {
			c.Options.TargetEff = p.TargetEff
		}
		if c.Options.HighEff == 0 {
			c.Options.HighEff = p.HighEff
		}
		if c.Options.Step == 0 {
			c.Options.Step = p.Step
		}
		if c.Options.BaseMPL == 0 {
			c.Options.BaseMPL = p.BaseMPL
		}
		if c.Options.MaxStableTransitions == 0 {
			c.Options.MaxStableTransitions = p.MaxStableTransitions
		}
	} else {
		// Non-PDPA regimes never read the PDPA parameters.
		c.Options.TargetEff = 0
		c.Options.HighEff = 0
		c.Options.Step = 0
		c.Options.BaseMPL = 0
		c.Options.MaxStableTransitions = 0
		if c.Options.FixedMPL == 0 {
			c.Options.FixedMPL = 4
		}
	}
	return c
}

// Key returns the canonical-config hash that identifies this spec in the
// result cache: sha256 over the canonicalized spec's JSON. Two specs with
// the same key are guaranteed (by the determinism regression tests) to
// produce byte-identical results, which is what makes cached outcomes
// substitutable for fresh simulations.
func (s Spec) Key() string {
	b, err := json.Marshal(s.canonical())
	if err != nil {
		// Spec is a plain value struct; Marshal cannot fail.
		panic("runqueue: marshal spec: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
