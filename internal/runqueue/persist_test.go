package runqueue

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/internal/store"
)

// openStore opens a durable store in dir with fsync-per-append (tests never
// want a batching window between "run finished" and "run durable").
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// drainClose drains the pool and closes its store — the daemon's shutdown
// sequence.
func drainClose(t *testing.T, p *Pool, s *store.Store) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartByteIdenticalResults is the acceptance property: a completed
// run recovered after a restart is indistinguishable from the original —
// same state, same timestamps, and byte-identical result and trace JSON.
func TestRestartByteIdenticalResults(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	p := New(Config{Store: st})

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		res, err := p.Submit(tinySpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.ID)
	}
	before := make(map[string]Snapshot, len(ids))
	for _, id := range ids {
		before[id] = waitState(t, p, id, Done)
	}
	drainClose(t, p, st)

	st2 := openStore(t, dir)
	defer st2.Close()
	p2 := New(Config{Store: st2})
	defer p2.Drain(context.Background())

	for _, id := range ids {
		got, err := p2.Get(id)
		if err != nil {
			t.Fatalf("run %s lost across restart: %v", id, err)
		}
		want := before[id]
		if got.State != Done || got.Key != want.Key {
			t.Fatalf("run %s: state %s key %s, want Done %s", id, got.State, got.Key, want.Key)
		}
		if !bytes.Equal(got.ResultJSON, want.ResultJSON) {
			t.Fatalf("run %s: result JSON changed across restart", id)
		}
		if !bytes.Equal(got.TraceJSON, want.TraceJSON) {
			t.Fatalf("run %s: trace JSON changed across restart", id)
		}
		if !got.Submitted.Equal(want.Submitted) || !got.Started.Equal(want.Started) ||
			!got.Finished.Equal(want.Finished) {
			t.Fatalf("run %s: timestamps drifted across restart", id)
		}
		done, err := p2.Done(id)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
		default:
			t.Fatalf("run %s: done channel open after recovery", id)
		}
	}
	if got := len(p2.Runs()); got != len(ids) {
		t.Fatalf("recovered pool lists %d runs, want %d", got, len(ids))
	}

	// The run-ID sequence continues past the recovered runs — no collisions.
	res, err := p2.Submit(tinySpec(99), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if res.ID == id {
			t.Fatalf("new submission reused recovered ID %s", id)
		}
	}
	waitState(t, p2, res.ID, Done)
}

// TestRestartServesCacheHits: recovered results re-enter the result cache,
// so resubmitting a spec that completed before the restart is a cache hit —
// the simulator is never invoked.
func TestRestartServesCacheHits(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	var calls atomic.Int64
	sim := func(ctx context.Context, spec Spec) (*pdpasim.Outcome, error) {
		calls.Add(1)
		return stubOutcome()
	}
	p := New(Config{Store: st, Simulate: sim})
	res, err := p.Submit(tinySpec(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, res.ID, Done)
	drainClose(t, p, st)

	st2 := openStore(t, dir)
	defer st2.Close()
	p2 := New(Config{Store: st2, Simulate: sim})
	defer p2.Drain(context.Background())
	res2, err := p2.Submit(tinySpec(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit || res2.ID != res.ID {
		t.Fatalf("resubmit after restart: got %+v, want cache hit on %s", res2, res.ID)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("simulator ran %d times, want 1 (recovered result must serve the hit)", n)
	}
}

// TestRestartRecoversSweeps: an accepted sweep and its members survive a
// restart, the aggregated status still computes, and the sweep ID sequence
// continues.
func TestRestartRecoversSweeps(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	p := New(Config{Store: st})
	res, err := p.SubmitSweep(tinySweepSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.RunIDs {
		waitState(t, p, id, Done)
	}
	want, err := p.GetSweep(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	drainClose(t, p, st)

	st2 := openStore(t, dir)
	defer st2.Close()
	p2 := New(Config{Store: st2})
	defer p2.Drain(context.Background())

	got, err := p2.GetSweep(res.ID)
	if err != nil {
		t.Fatalf("sweep %s lost across restart: %v", res.ID, err)
	}
	if got.State != Done || got.Done != want.Done || got.Total != want.Total {
		t.Fatalf("recovered sweep %s: %s %d/%d, want %s %d/%d",
			res.ID, got.State, got.Done, got.Total, want.State, want.Done, want.Total)
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("recovered sweep has %d cells, want %d", len(got.Cells), len(want.Cells))
	}
	if n := len(p2.Sweeps()); n != 1 {
		t.Fatalf("recovered pool lists %d sweeps, want 1", n)
	}
	res2, err := p2.SubmitSweep(tinySweepSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ID == res.ID {
		t.Fatalf("new sweep reused recovered ID %s", res.ID)
	}
	if res2.CacheHits != got.Total {
		t.Fatalf("resubmitted sweep got %d cache hits, want all %d members", res2.CacheHits, got.Total)
	}
}

// TestRehydrateRespectsHistoryLimit: a pool restarted with smaller bounds
// keeps only the newest recovered runs (cached runs are spared from history
// eviction, so the cache must shrink too) and counts the rest as store
// evictions.
func TestRehydrateRespectsHistoryLimit(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	p := New(Config{Store: st})
	var ids []string
	for seed := int64(1); seed <= 5; seed++ {
		res, err := p.Submit(tinySpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, p, res.ID, Done)
		ids = append(ids, res.ID)
	}
	drainClose(t, p, st)

	st2 := openStore(t, dir)
	defer st2.Close()
	p2 := New(Config{Store: st2, HistoryLimit: 2, CacheSize: 1})
	defer p2.Drain(context.Background())
	if got := len(p2.Runs()); got != 2 {
		t.Fatalf("recovered pool lists %d runs, want HistoryLimit 2", got)
	}
	// The two newest survive, the three oldest are gone and counted.
	for _, id := range ids[3:] {
		if _, err := p2.Get(id); err != nil {
			t.Fatalf("newest run %s evicted: %v", id, err)
		}
	}
	for _, id := range ids[:3] {
		if _, err := p2.Get(id); err == nil {
			t.Fatalf("oldest run %s survived past HistoryLimit", id)
		}
	}
	if v, ok := p2.Metrics().Value("pdpad_store_evicted_runs_total", ""); !ok || v != 3 {
		t.Fatalf("store evicted counter %v (ok %v), want 3", v, ok)
	}
}

// TestCompactionUnderPool: with a one-byte compaction bound every finished
// run triggers a compaction, and the store still recovers the full live set
// from a single snapshot generation.
func TestCompactionUnderPool(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	p := New(Config{Store: st, StoreCompactBytes: 1})
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		res, err := p.Submit(tinySpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, p, res.ID, Done)
		ids = append(ids, res.ID)
	}
	if st.Stats().Compactions == 0 {
		t.Fatal("no compaction despite 1-byte bound")
	}
	drainClose(t, p, st)

	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) > 2 {
		var names []string
		for _, f := range files {
			names = append(names, f.Name())
		}
		t.Fatalf("store dir holds %v, want at most one snapshot + one journal", names)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	p2 := New(Config{Store: st2})
	defer p2.Drain(context.Background())
	for _, id := range ids {
		if _, err := p2.Get(id); err != nil {
			t.Fatalf("run %s lost after compaction: %v", id, err)
		}
	}
}

// TestStoreErrorsDoNotFailRuns: persistence failures (store closed under
// the pool) are counted, but the run still completes and is served from
// memory.
func TestStoreErrorsDoNotFailRuns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	st := openStore(t, dir)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	p := New(Config{Store: st})
	defer p.Drain(context.Background())
	res, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, p, res.ID, Done)
	if len(snap.ResultJSON) == 0 {
		t.Fatal("run completed without a result")
	}
	if v, ok := p.Metrics().Value("pdpad_store_errors_total", ""); !ok || v < 1 {
		t.Fatalf("store errors counter %v (ok %v), want >= 1", v, ok)
	}
}
