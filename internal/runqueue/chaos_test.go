package runqueue

// Chaos suite: seeded fault scenarios driven through the pool's injection
// sites, each asserting the exact terminal state, the robustness counters,
// and — via leakcheck — that the pool winds down to zero extra goroutines.
// Rules select occurrences by position, never by wall clock, so every
// scenario is deterministic under -count=5 and across worker counts.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/internal/faults"
	"pdpasim/internal/invariant"
	"pdpasim/internal/leakcheck"
)

// drainPool gracefully drains p; every run must already be terminal or able
// to finish on its own.
func drainPool(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// instantSim is a SimulateFunc returning the stub outcome immediately.
func instantSim(ctx context.Context, spec Spec) (*pdpasim.Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return stubOutcome()
}

// waitFailed polls until the run fails, fataling on any other terminal state.
func waitFailed(t *testing.T, p *Pool, id string) Snapshot {
	t.Helper()
	return waitState(t, p, id, Failed)
}

// TestChaosHangTimesOut: a hung attempt is cancelled by RunTimeout, the run
// fails with ErrRunTimeout, and the pool keeps serving.
func TestChaosHangTimesOut(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(1, faults.Rule{Site: faults.SiteWorkerStart, Kind: faults.KindHang, Count: 1})
	p := New(Config{RunTimeout: 30 * time.Millisecond, Simulate: instantSim, Faults: inj})

	r, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitFailed(t, p, r.ID)
	if !errors.Is(snap.Err, ErrRunTimeout) {
		t.Fatalf("err %v, want ErrRunTimeout", snap.Err)
	}
	if got := p.Stats().Timeouts; got != 1 {
		t.Fatalf("timeouts %d, want 1", got)
	}
	// The pool survived: the next run (fault window passed) completes.
	r2, err := p.Submit(tinySpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, r2.ID, Done)
	drainPool(t, p)
}

// TestChaosWorkerPanicContained: a panicking worker fails its run — never
// the pool — and the failure does not poison the cache.
func TestChaosWorkerPanicContained(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(1, faults.Rule{Site: faults.SiteWorkerStart, Kind: faults.KindPanic, Count: 1})
	p := New(Config{Simulate: instantSim, Faults: inj})

	r, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitFailed(t, p, r.ID)
	if !strings.Contains(snap.Err.Error(), "injected panic") {
		t.Fatalf("err %v, want recovered injected panic", snap.Err)
	}
	if got := p.Stats().RecoveredPanics; got != 1 {
		t.Fatalf("recovered panics %d, want 1", got)
	}
	// Resubmitting the same spec re-simulates — a failed run must not be
	// served from the cache — and now succeeds.
	again, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit || again.Deduped {
		t.Fatalf("failed run satisfied a new submission: %+v", again)
	}
	waitState(t, p, again.ID, Done)
	drainPool(t, p)
}

// TestChaosTransientRetriedToSuccess: two transient failures, then success,
// inside the retry budget — at both worker counts.
func TestChaosTransientRetriedToSuccess(t *testing.T) {
	for _, workers := range []int{1, 3} {
		t.Run(map[int]string{1: "workers=1", 3: "workers=3"}[workers], func(t *testing.T) {
			leakcheck.Check(t)
			var calls atomic.Int64
			inj := faults.New(1, faults.Rule{
				Site: faults.SiteWorkerStart, Kind: faults.KindError, Transient: true, Count: 2,
			})
			p := New(Config{
				BaseWorkers: workers, MaxWorkers: workers,
				MaxRetries: 3, RetryBackoff: time.Millisecond,
				Simulate: func(ctx context.Context, spec Spec) (*pdpasim.Outcome, error) {
					calls.Add(1)
					return instantSim(ctx, spec)
				},
				Faults: inj,
			})
			r, err := p.Submit(tinySpec(1), 0)
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, p, r.ID, Done)
			if got := p.Stats().Retries; got != 2 {
				t.Fatalf("retries %d, want 2", got)
			}
			// The faults fired before the simulator was reached: only the
			// successful attempt simulated.
			if got := calls.Load(); got != 1 {
				t.Fatalf("simulated %d times, want 1", got)
			}
			drainPool(t, p)
		})
	}
}

// TestChaosTransientExhaustsRetries: a persistent transient failure settles
// as Failed after MaxRetries+1 attempts, with the injected cause preserved.
func TestChaosTransientExhaustsRetries(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(1, faults.Rule{
		Site: faults.SiteWorkerStart, Kind: faults.KindError, Transient: true,
	})
	p := New(Config{MaxRetries: 2, RetryBackoff: time.Millisecond, Simulate: instantSim, Faults: inj})
	r, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitFailed(t, p, r.ID)
	if !errors.Is(snap.Err, faults.ErrInjected) {
		t.Fatalf("err %v, want ErrInjected", snap.Err)
	}
	if got := p.Stats().Retries; got != 2 {
		t.Fatalf("retries %d, want 2 (MaxRetries exhausted)", got)
	}
	if got := inj.Seen(faults.SiteWorkerStart); got != 3 {
		t.Fatalf("attempts %d, want 3", got)
	}
	drainPool(t, p)
}

// TestChaosNonTransientNotRetried: a plain injected error is terminal on the
// first attempt even with retry budget available.
func TestChaosNonTransientNotRetried(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(1, faults.Rule{Site: faults.SiteWorkerStart, Kind: faults.KindError})
	p := New(Config{MaxRetries: 3, RetryBackoff: time.Millisecond, Simulate: instantSim, Faults: inj})
	r, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitFailed(t, p, r.ID)
	if !errors.Is(snap.Err, faults.ErrInjected) {
		t.Fatalf("err %v, want ErrInjected", snap.Err)
	}
	if got := p.Stats().Retries; got != 0 {
		t.Fatalf("retries %d, want 0", got)
	}
	drainPool(t, p)
}

// TestChaosSlowCacheHit: a delayed cache response slows only the submitter —
// the served bytes stay identical to a fault-free pool's.
func TestChaosSlowCacheHit(t *testing.T) {
	leakcheck.Check(t)
	const delay = 30 * time.Millisecond
	inj := faults.New(1, faults.Rule{Site: faults.SiteCacheHit, Kind: faults.KindDelay, Delay: delay})
	p := New(Config{Faults: inj})
	clean := New(Config{})

	r, err := p.Submit(tinySpec(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	first := waitState(t, p, r.ID, Done)

	begin := time.Now()
	hit, err := p.Submit(tinySpec(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); !hit.CacheHit || elapsed < delay {
		t.Fatalf("cache hit %v after %v, want hit delayed ≥ %v", hit.CacheHit, elapsed, delay)
	}

	cr, err := clean.Submit(tinySpec(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	baseline := waitState(t, clean, cr.ID, Done)
	if string(first.ResultJSON) != string(baseline.ResultJSON) {
		t.Fatal("result under cache-delay injection differs from fault-free baseline")
	}
	drainPool(t, p)
	drainPool(t, clean)
}

// TestChaosBurstOverloadSheds: past ShedDepth, submissions are rejected with
// an OverloadError carrying a Retry-After estimate; accepted runs complete.
func TestChaosBurstOverloadSheds(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	release := make(chan struct{})
	p := New(Config{
		BaseWorkers: 1, MaxWorkers: 1, ShedDepth: 2,
		Simulate: blockingSim(t, &calls, release),
	})
	running, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, running.ID, Running)
	var accepted []string
	for seed := int64(2); seed <= 3; seed++ { // fills the queue to ShedDepth
		r, err := p.Submit(tinySpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		accepted = append(accepted, r.ID)
	}
	for seed := int64(4); seed <= 5; seed++ { // burst past the shed depth
		_, err := p.Submit(tinySpec(seed), 0)
		var overload *OverloadError
		if !errors.As(err, &overload) {
			t.Fatalf("seed %d: err %v, want OverloadError", seed, err)
		}
		if overload.Depth != 2 || overload.RetryAfter < time.Second {
			t.Fatalf("overload %+v, want depth 2 and Retry-After ≥ 1s", overload)
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatal("OverloadError must satisfy errors.Is(err, ErrQueueFull)")
		}
	}
	if got := p.Stats().Shed; got != 2 {
		t.Fatalf("shed %d submissions, want 2", got)
	}
	close(release)
	waitState(t, p, running.ID, Done)
	for _, id := range accepted {
		waitState(t, p, id, Done)
	}
	drainPool(t, p)
}

// TestChaosPanicMidDrain: a worker that crashes while the pool is draining
// fails its own run; the drain still completes gracefully and the queued run
// finishes.
func TestChaosPanicMidDrain(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	release := make(chan struct{})
	// worker_finish fires after the simulator returns — i.e. after release,
	// which we close only once the drain is underway.
	inj := faults.New(1, faults.Rule{Site: faults.SiteWorkerFinish, Kind: faults.KindPanic, Count: 1})
	p := New(Config{
		BaseWorkers: 1, MaxWorkers: 1,
		Simulate: blockingSim(t, &calls, release), Faults: inj,
	})
	victim, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := p.Submit(tinySpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, victim.ID, Running)

	drained := make(chan error, 1)
	go func() { drained <- p.Drain(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // let Drain flip the draining flag
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	snap, err := p.Get(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Failed || !strings.Contains(snap.Err.Error(), "injected panic") {
		t.Fatalf("victim ended %s (err %v), want failed by recovered panic", snap.State, snap.Err)
	}
	surv, err := p.Get(survivor.ID)
	if err != nil {
		t.Fatal(err)
	}
	if surv.State != Done {
		t.Fatalf("survivor ended %s (err %v), want done", surv.State, surv.Err)
	}
	if got := p.Stats().RecoveredPanics; got != 1 {
		t.Fatalf("recovered panics %d, want 1", got)
	}
}

// TestChaosHangForcedDrainCancels: with no RunTimeout, a hung run is only
// recoverable by cancellation — a forced drain reclaims it and the worker
// goroutine exits.
func TestChaosHangForcedDrainCancels(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(1, faults.Rule{Site: faults.SiteWorkerStart, Kind: faults.KindHang})
	p := New(Config{Simulate: instantSim, Faults: inj})
	r, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, r.ID, Running)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err %v", err)
	}
	snap, err := p.Get(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Canceled || !errors.Is(snap.Err, context.Canceled) {
		t.Fatalf("hung run ended %s (err %v), want canceled", snap.State, snap.Err)
	}
}

// TestChaosUntouchedRunsByteIdentical: runs the injector never touches
// produce byte-identical results to a fault-free pool — fault handling has
// no blast radius beyond its target.
func TestChaosUntouchedRunsByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	// One worker keeps site occurrences in submission order, so the panic
	// deterministically hits the sacrificial first run.
	inj := faults.New(1, faults.Rule{Site: faults.SiteWorkerStart, Kind: faults.KindPanic, Count: 1})
	faulty := New(Config{BaseWorkers: 1, MaxWorkers: 1, Faults: inj})
	clean := New(Config{BaseWorkers: 1, MaxWorkers: 1})

	sac, err := faulty.Submit(tinySpec(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFailed(t, faulty, sac.ID)

	for seed := int64(1); seed <= 3; seed++ {
		fr, err := faulty.Submit(tinySpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		got := waitState(t, faulty, fr.ID, Done)
		cr, err := clean.Submit(tinySpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		want := waitState(t, clean, cr.ID, Done)
		if string(got.ResultJSON) != string(want.ResultJSON) {
			t.Fatalf("seed %d: result under injection differs from fault-free pool", seed)
		}
	}
	drainPool(t, faulty)
	drainPool(t, clean)
}

// TestChaosInvariantsHoldUnderRetry: a transient failure after a completed
// simulation forces a full re-run; both executions must satisfy every
// scheduling invariant.
func TestChaosInvariantsHoldUnderRetry(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(1, faults.Rule{
		Site: faults.SiteWorkerFinish, Kind: faults.KindError, Transient: true, Count: 1,
	})
	var mu sync.Mutex
	var checkers []*invariant.Checker
	p := New(Config{
		MaxRetries: 1, RetryBackoff: time.Millisecond,
		Simulate: func(ctx context.Context, spec Spec) (*pdpasim.Outcome, error) {
			chk := invariant.New()
			mu.Lock()
			checkers = append(checkers, chk)
			mu.Unlock()
			ws, opts := spec.Facade()
			opts.Observer = pdpasim.ObserverFunc(chk.Observe)
			return pdpasim.RunContext(ctx, ws, opts)
		},
		Faults: inj,
	})
	r, err := p.Submit(tinySpec(9), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, r.ID, Done)
	if got := p.Stats().Retries; got != 1 {
		t.Fatalf("retries %d, want 1", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(checkers) != 2 {
		t.Fatalf("simulated %d times, want 2 (original + retry)", len(checkers))
	}
	for i, chk := range checkers {
		if err := chk.Err(); err != nil {
			t.Errorf("attempt %d violated invariants: %v", i+1, err)
		}
	}
	drainPool(t, p)
}

// TestSSESlowSubscriberDrops: a subscriber that never reads loses
// intermediate events — counted, never blocking the pool — while the run
// itself completes and its terminal state stays readable.
func TestSSESlowSubscriberDrops(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	release := make(chan struct{})
	p := New(Config{
		BaseWorkers: 1, MaxWorkers: 1, EventBuffer: 1,
		Simulate: blockingSim(t, &calls, release),
	})
	blocker, err := p.Submit(tinySpec(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := p.Submit(tinySpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := p.Subscribe(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	// The initial "queued" event fills the 1-slot buffer; with the
	// subscriber never reading, the running and done transitions must drop.
	close(release)
	waitState(t, p, blocker.ID, Done)
	waitState(t, p, queued.ID, Done)
	if got := p.met.sseDropped.Value(); got < 1 {
		t.Fatalf("sse dropped %d events, want ≥ 1", got)
	}
	ev, ok := <-ch
	if !ok || ev.State != Queued {
		t.Fatalf("buffered event %+v ok=%v, want the initial queued state", ev, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("subscriber channel not closed after terminal state")
	}
	drainPool(t, p)
}

// TestObserverLagDrops: a blocked Config.Observer overflows its buffer —
// events drop and are counted, and the scheduler never stalls behind it.
func TestObserverLagDrops(t *testing.T) {
	leakcheck.Check(t)
	gate := make(chan struct{})
	var delivered atomic.Int64
	p := New(Config{
		ObserverBuffer: 1, Simulate: instantSim,
		Observer: pdpasim.ObserverFunc(func(e pdpasim.TraceEvent) {
			if delivered.Add(1) == 1 {
				<-gate // wedge the forwarder on the first event
			}
		}),
	})
	for seed := int64(1); seed <= 2; seed++ {
		r, err := p.Submit(tinySpec(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		// The pool progresses to Done while the observer is wedged: delivery
		// is fully decoupled from the scheduler.
		waitState(t, p, r.ID, Done)
	}
	if got := p.met.observerDropped.Value(); got < 1 {
		t.Fatalf("observer dropped %d events, want ≥ 1", got)
	}
	close(gate) // release the forwarder so Drain can flush and exit
	drainPool(t, p)
}

// TestChaosDeterministicAcrossReplays: the same seed and rules replayed on a
// fresh pool produce the same terminal states and counters — the property
// that makes every scenario above reproducible under -count=5.
func TestChaosDeterministicAcrossReplays(t *testing.T) {
	leakcheck.Check(t)
	type outcome struct {
		states  []State
		retries uint64
		panics  uint64
	}
	replay := func() outcome {
		inj := faults.New(42,
			faults.Rule{Site: faults.SiteWorkerStart, Kind: faults.KindPanic, Count: 1},
			faults.Rule{Site: faults.SiteWorkerStart, Kind: faults.KindError, Transient: true, After: 1, Count: 1},
		)
		p := New(Config{
			BaseWorkers: 1, MaxWorkers: 1,
			MaxRetries: 1, RetryBackoff: time.Millisecond,
			Simulate: instantSim, Faults: inj,
		})
		var out outcome
		for seed := int64(1); seed <= 3; seed++ {
			r, err := p.Submit(tinySpec(seed), 0)
			if err != nil {
				t.Fatal(err)
			}
			done, err := p.Done(r.ID)
			if err != nil {
				t.Fatal(err)
			}
			<-done
			snap, err := p.Get(r.ID)
			if err != nil {
				t.Fatal(err)
			}
			out.states = append(out.states, snap.State)
			_ = snap
		}
		st := p.Stats()
		out.retries, out.panics = st.Retries, st.RecoveredPanics
		drainPool(t, p)
		return out
	}
	first := replay()
	want := outcome{states: []State{Failed, Done, Done}, retries: 1, panics: 1}
	for i, got := range []outcome{first, replay()} {
		if len(got.states) != 3 || got.states[0] != want.states[0] ||
			got.states[1] != want.states[1] || got.states[2] != want.states[2] ||
			got.retries != want.retries || got.panics != want.panics {
			t.Fatalf("replay %d: %+v, want %+v", i, got, want)
		}
	}
}
