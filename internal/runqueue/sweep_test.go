package runqueue

import (
	"sync/atomic"
	"testing"
	"time"

	"pdpasim/internal/leakcheck"
)

func tinySweepSpec() SweepSpec {
	return SweepSpec{
		Policies: []string{"equip", "pdpa"},
		Mixes:    []string{"w1"},
		Loads:    []float64{0.6},
		Seeds:    []int64{1, 2},
		WindowS:  60,
	}
}

// waitSweepState polls until the sweep reaches want or the deadline passes.
func waitSweepState(t *testing.T, p *Pool, id string, want State) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st, err := p.GetSweep(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() && st.State != want {
			t.Fatalf("sweep %s reached %s (errors %v), want %s", id, st.State, st.Errors, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached %s", id, want)
	return SweepStatus{}
}

// TestSweepSubmitAndAggregate runs a real 2-policy × 2-seed grid through the
// pool and checks the aggregated cells.
func TestSweepSubmitAndAggregate(t *testing.T) {
	p := New(Config{})
	res, err := p.SubmitSweep(tinySweepSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RunIDs) != 4 {
		t.Fatalf("expected 4 member runs, got %d", len(res.RunIDs))
	}
	st := waitSweepState(t, p, res.ID, Done)
	if st.Done != 4 || st.Total != 4 {
		t.Fatalf("done %d/%d, want 4/4", st.Done, st.Total)
	}
	if len(st.Cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(st.Cells))
	}
	for _, c := range st.Cells {
		if c.Mix != "w1" || c.Load != 0.6 {
			t.Fatalf("cell mislabeled: %+v", c)
		}
		if c.Makespan.N != 2 || c.Makespan.Mean <= 0 {
			t.Fatalf("cell aggregates wrong: %+v", c.Makespan)
		}
		if len(c.Response) == 0 {
			t.Fatal("per-app response aggregates missing")
		}
	}
	// Cells follow grid order: policies as submitted.
	if st.Cells[0].Policy != "equip" || st.Cells[1].Policy != "pdpa" {
		t.Fatalf("cell order wrong: %s, %s", st.Cells[0].Policy, st.Cells[1].Policy)
	}
}

// TestSweepSharesCacheWithRuns: a member identical to an already completed
// individual run is a cache hit, not a new simulation.
func TestSweepSharesCacheWithRuns(t *testing.T) {
	p := New(Config{})
	single := Spec{
		Workload: WorkloadSpec{Mix: "w1", Load: 0.6, WindowS: 60, Seed: 1},
		Options:  RunOptions{Policy: "equip", Seed: 1},
	}
	sub, err := p.Submit(single, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-mustDone(t, p, sub.ID)

	res, err := p.SubmitSweep(tinySweepSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 1 {
		t.Fatalf("expected 1 cache hit, got %d", res.CacheHits)
	}
	if res.RunIDs[0] != sub.ID {
		t.Fatalf("cached member should reuse run %s, got %s", sub.ID, res.RunIDs[0])
	}
	st := waitSweepState(t, p, res.ID, Done)
	if len(st.Cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(st.Cells))
	}
}

func mustDone(t *testing.T, p *Pool, id string) <-chan struct{} {
	t.Helper()
	ch, err := p.Done(id)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// TestSweepAtomicRejection: an invalid or oversized sweep leaves the pool
// untouched.
func TestSweepAtomicRejection(t *testing.T) {
	p := New(Config{QueueLimit: 3})
	if _, err := p.SubmitSweep(SweepSpec{Policies: []string{"equip"}}, 0); err == nil {
		t.Fatal("sweep without mixes accepted")
	}
	if _, err := p.SubmitSweep(SweepSpec{
		Policies: []string{"bogus"}, Mixes: []string{"w1"},
	}, 0); err == nil {
		t.Fatal("sweep with unknown policy accepted")
	}
	// 4 distinct members > QueueLimit 3: rejected atomically.
	if _, err := p.SubmitSweep(tinySweepSpec(), 0); err != ErrQueueFull {
		t.Fatalf("oversized sweep: got %v, want ErrQueueFull", err)
	}
	if got := len(p.Runs()); got != 0 {
		t.Fatalf("rejected sweep leaked %d runs into the pool", got)
	}
	if got := len(p.Sweeps()); got != 0 {
		t.Fatalf("rejected sweep left %d sweep records", got)
	}
}

// TestSweepCancel cancels a sweep whose members are still in flight, and
// verifies cancellation leaves no goroutines behind.
func TestSweepCancel(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	p := New(Config{Simulate: blockingSim(t, &calls, release)})
	res, err := p.SubmitSweep(tinySweepSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CancelSweep(res.ID); err != nil {
		t.Fatal(err)
	}
	st := waitSweepState(t, p, res.ID, Canceled)
	if len(st.Cells) != 0 {
		t.Fatal("cancelled sweep produced cells")
	}
	if _, err := p.CancelSweep("sweep-999999"); err != ErrNotFound {
		t.Fatalf("unknown sweep cancel: got %v, want ErrNotFound", err)
	}
}
