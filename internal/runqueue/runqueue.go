package runqueue

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"pdpasim"
	"pdpasim/internal/faults"
	"pdpasim/internal/obs"
	"pdpasim/internal/store"
)

// State is a run's lifecycle state.
type State string

// The run lifecycle: Queued → Running → one of the terminal states.
const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Canceled
}

// Sentinel errors returned by Submit and the lookup methods.
var (
	ErrNotFound  = errors.New("runqueue: no such run")
	ErrDraining  = errors.New("runqueue: pool is draining, not accepting work")
	ErrQueueFull = errors.New("runqueue: queue is full")
	// ErrRunTimeout marks a run failed because no attempt produced a result
	// within Config.RunTimeout; match with errors.Is.
	ErrRunTimeout = errors.New("runqueue: run timeout")
)

// OverloadError is the load-shedding rejection: the queue is past the
// configured shed depth and the submission was turned away before consuming
// resources. RetryAfter estimates when capacity frees up, sized for an HTTP
// Retry-After header. errors.Is(err, ErrQueueFull) matches, so callers
// treating shedding like a full queue keep working.
type OverloadError struct {
	// Depth is the queue depth at rejection.
	Depth int
	// RetryAfter is the suggested wait before retrying, whole seconds.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("runqueue: overloaded: %d runs queued; retry in %v", e.Depth, e.RetryAfter)
}

// Is makes errors.Is(err, ErrQueueFull) succeed for shed submissions.
func (e *OverloadError) Is(target error) bool { return target == ErrQueueFull }

// SimulateFunc executes one spec; tests substitute it to control timing.
type SimulateFunc func(ctx context.Context, spec Spec) (*pdpasim.Outcome, error)

// Config parameterizes a Pool. The zero value gets sensible defaults.
type Config struct {
	// BaseWorkers is the concurrency below which admission is unconditional
	// — the analogue of PDPA's base multiprogramming level (default 2).
	BaseWorkers int
	// MaxWorkers caps concurrent simulations (default 2×BaseWorkers).
	MaxWorkers int
	// Warmup is how long a freshly started run is considered "settling".
	// Above BaseWorkers, a queued run is admitted only when every in-flight
	// run is past warm-up — PDPA's stability condition (default 250 ms).
	Warmup time.Duration
	// QueueLimit bounds the FIFO queue; Submit fails with ErrQueueFull
	// beyond it (default 256).
	QueueLimit int
	// CacheSize bounds the completed-result cache (default 128 entries,
	// LRU eviction).
	CacheSize int
	// HistoryLimit bounds how many finished runs stay addressable by ID
	// (default 2048; oldest uncached runs are forgotten first).
	HistoryLimit int
	// DefaultDeadline bounds each run's total latency (queue wait plus
	// simulation) when the submitter sets none; 0 means no deadline.
	DefaultDeadline time.Duration
	// TraceLimit bounds the decision-trace events retained per run; the
	// recorded trace is stored alongside the result (evicted with the run's
	// history entry) and served at GET /v1/runs/{id}/trace. 0 means the
	// default 2000; negative disables per-run decision tracing.
	TraceLimit int
	// Observer, when set, receives one "run_state" TraceEvent per run
	// lifecycle transition (ID is the run ID, State the new state, Reason
	// the error message if any). Delivery is asynchronous through a bounded
	// buffer so a slow observer never blocks the pool; overflow is dropped
	// and counted in pdpad_observer_dropped_total.
	Observer pdpasim.Observer
	// Simulate overrides the simulation function (default: the real
	// simulator via pdpasim.RunContext, with decision tracing per
	// TraceLimit).
	Simulate SimulateFunc

	// RunTimeout bounds each simulation attempt's wall clock, measured from
	// attempt start (queue wait is DefaultDeadline's business). The attempt's
	// context is cancelled, the engine aborts at its next interrupt check,
	// and the run fails with an error matching ErrRunTimeout. 0 disables.
	RunTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried (total
	// attempts = MaxRetries+1). Only errors that expose Transient() bool ==
	// true are retried — cancellations, deadlines, timeouts, and panics
	// never are. Retries pause for RetryBackoff doubled per attempt plus
	// seeded jitter. 0 disables retry.
	MaxRetries int
	// RetryBackoff is the base of the exponential retry backoff (default
	// 50 ms, capped at 5 s per pause).
	RetryBackoff time.Duration
	// ShedDepth enables load shedding: a submission finding this many runs
	// already queued is rejected with an *OverloadError carrying a
	// Retry-After estimate, before the hard QueueLimit is ever reached.
	// 0 disables shedding.
	ShedDepth int
	// EventBuffer is each SSE subscriber channel's capacity (default 16).
	EventBuffer int
	// ObserverBuffer bounds undelivered Config.Observer events (default 256).
	ObserverBuffer int
	// Faults, when set, is consulted at the pool's fault-injection sites
	// (attempt start and finish, cache-hit serving) — chaos-test tooling.
	// Nil, the production value, costs one nil check per site.
	Faults *faults.Injector

	// Store, when set, makes terminal runs and accepted sweeps durable: the
	// pool appends them to the store's journal as they settle and rehydrates
	// its result cache, run history, and sweep index from the recovered
	// records in New. The pool takes over the opened store's recovered
	// records but not its lifecycle — the owner still calls Store.Close
	// after Drain.
	Store *store.Store
	// StoreCompactBytes is the journal size past which the pool compacts
	// the store down to its live record set (default 8 MiB).
	StoreCompactBytes int64
}

func (c Config) withDefaults() Config {
	if c.BaseWorkers <= 0 {
		c.BaseWorkers = 2
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 2 * c.BaseWorkers
	}
	if c.MaxWorkers < c.BaseWorkers {
		c.MaxWorkers = c.BaseWorkers
	}
	if c.Warmup <= 0 {
		c.Warmup = 250 * time.Millisecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 256
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 2048
	}
	if c.TraceLimit == 0 {
		c.TraceLimit = 2000
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.ShedDepth < 0 {
		c.ShedDepth = 0
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 16
	}
	if c.ObserverBuffer <= 0 {
		c.ObserverBuffer = observerBuffer
	}
	if c.StoreCompactBytes <= 0 {
		c.StoreCompactBytes = 8 << 20
	}
	if c.Simulate == nil {
		limit := c.TraceLimit
		c.Simulate = func(ctx context.Context, spec Spec) (*pdpasim.Outcome, error) {
			ws, opts := spec.Facade()
			if limit > 0 {
				opts.DecisionTrace = limit
			}
			return pdpasim.RunContext(ctx, ws, opts)
		}
	}
	return c
}

// Event is one lifecycle transition, streamed to subscribers (the daemon's
// SSE endpoint).
type Event struct {
	RunID   string    `json:"run_id"`
	State   State     `json:"state"`
	At      time.Time `json:"at"`
	Message string    `json:"message,omitempty"`
}

// run is the pool's record of one submission. All mutable fields are
// guarded by the pool mutex.
type run struct {
	id  string
	key string

	spec       Spec
	state      State
	err        error
	resultJSON []byte
	traceJSON  []byte
	submitted  time.Time
	started    time.Time
	finished   time.Time
	deadline   time.Duration

	cancel          context.CancelFunc
	cancelRequested bool
	subs            []chan Event
	done            chan struct{}
}

// Snapshot is a consistent copy of a run's externally visible state.
type Snapshot struct {
	ID        string
	Key       string
	Spec      Spec
	State     State
	Err       error
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// ResultJSON is the full serialized result once the run is Done.
	ResultJSON []byte
	// TraceJSON is the run's serialized decision trace ({"events": [...],
	// "dropped": n}) once Done, when tracing was enabled.
	TraceJSON []byte
}

// SubmitResult reports how a submission was resolved.
type SubmitResult struct {
	ID    string
	State State
	// CacheHit: an identical spec had already completed; its result is
	// served without re-simulating.
	CacheHit bool
	// Deduped: an identical spec is queued or in flight; the submission
	// joined it (singleflight).
	Deduped bool
}

// wallBuckets are the histogram bucket upper bounds (seconds) for per-run
// simulation wall time.
var wallBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// WallHistogram is a Prometheus-style cumulative histogram of per-run
// simulation wall time.
type WallHistogram struct {
	// Counts[i] counts runs with wall time ≤ wallBuckets[i]; the implicit
	// +Inf bucket is Count.
	Counts []uint64
	Sum    float64
	Count  uint64
}

// BucketBounds returns the bucket upper bounds in seconds.
func (WallHistogram) BucketBounds() []float64 { return wallBuckets }

// wallFromSnapshot converts an obs histogram snapshot (non-cumulative
// counts) to the cumulative WallHistogram wire form.
func wallFromSnapshot(s obs.HistogramSnapshot) WallHistogram {
	counts := make([]uint64, len(s.Buckets))
	var cum uint64
	for i := range s.Buckets {
		cum += s.Counts[i]
		counts[i] = cum
	}
	return WallHistogram{Counts: counts, Sum: s.Sum, Count: s.Count}
}

// traceEventBuckets bucket per-run decision-trace event totals;
// allocBuckets bucket per-job time-averaged processor allocations;
// attemptBuckets bucket simulation attempts per run (1 = no retry).
var (
	traceEventBuckets = []float64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000}
	allocBuckets      = []float64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}
	attemptBuckets    = []float64{1, 2, 3, 4, 5, 8}
)

// panicsHelp is shared with the HTTP layer, which registers the "http"
// series of the same family.
const panicsHelp = "Panics recovered without taking the daemon down, by origin."

// poolMetrics is the pool's obs.Registry plus the instruments it owns. The
// registry renders every pdpad_* series for the daemon's /metrics endpoint;
// gauges and the lifecycle counters read pool state through closures at
// exposition time, so there is no double bookkeeping.
type poolMetrics struct {
	reg *obs.Registry

	wall        *obs.Histogram // simulation wall time per run
	queueWait   *obs.Histogram // queue wait per started run
	traceEvents *obs.Histogram // decision events recorded per run
	allocProcs  *obs.Histogram // time-averaged processors per finished job
	attempts    *obs.Histogram // simulation attempts per run

	cacheEvictions  *obs.Counter // Done results evicted from the LRU cache
	sseDropped      *obs.Counter // events dropped on slow SSE subscribers
	observerDropped *obs.Counter // events dropped on a slow Config.Observer
	retries         *obs.Counter // attempts retried after transient failures
	timeouts        *obs.Counter // attempts cancelled by RunTimeout
	panics          *obs.Counter // worker panics recovered
	sheds           *obs.Counter // submissions rejected by load shedding
	degraded        *obs.Counter // SSE events suppressed under overload
	storeErrors     *obs.Counter // store writes/records that failed or were unreadable
	storeEvicted    *obs.Counter // recovered runs dropped to respect HistoryLimit
}

func (p *Pool) initMetrics() {
	reg := obs.NewRegistry()
	m := &poolMetrics{reg: reg}

	locked := func(f func() float64) func() float64 {
		return func() float64 { p.mu.Lock(); defer p.mu.Unlock(); return f() }
	}
	lockedU := func(f func() uint64) func() uint64 {
		return func() uint64 { p.mu.Lock(); defer p.mu.Unlock(); return f() }
	}
	reg.GaugeFunc("pdpad_queue_depth", "Runs waiting in the FIFO queue.",
		locked(func() float64 { return float64(len(p.queue)) }))
	reg.GaugeFunc("pdpad_inflight_runs", "Simulations currently executing.",
		locked(func() float64 { return float64(len(p.running)) }))
	reg.GaugeFunc("pdpad_cached_results", "Completed results held in the LRU cache.",
		locked(func() float64 { return float64(len(p.cacheLRU)) }))
	reg.GaugeFunc("pdpad_goroutines", "Live goroutines in the serving process (leak smoke-checks read this).",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("pdpad_draining", "1 while the pool is draining for shutdown.",
		locked(func() float64 {
			if p.draining {
				return 1
			}
			return 0
		}))

	reg.CounterFunc("pdpad_runs_submitted_total", "Submissions received, including cache and dedup hits.",
		lockedU(func() uint64 { return p.stats.Submitted }))
	reg.CounterFunc("pdpad_runs_started_total", "Simulations started.",
		lockedU(func() uint64 { return p.stats.Started }))
	reg.CounterFunc("pdpad_cache_hits_total", "Submissions served from the result cache.",
		lockedU(func() uint64 { return p.stats.CacheHits }))
	reg.CounterFunc("pdpad_cache_misses_total", "Submissions that required a fresh simulation.",
		lockedU(func() uint64 { return p.stats.CacheMisses }))
	reg.CounterFunc("pdpad_dedup_hits_total", "Submissions that joined an identical in-flight run (singleflight).",
		lockedU(func() uint64 { return p.stats.DedupHits }))
	const finished = "pdpad_runs_finished_total"
	const finishedHelp = "Runs finished, by terminal state."
	reg.LabeledCounterFunc(finished, finishedHelp, "state", "done",
		lockedU(func() uint64 { return p.stats.Done }))
	reg.LabeledCounterFunc(finished, finishedHelp, "state", "failed",
		lockedU(func() uint64 { return p.stats.Failed }))
	reg.LabeledCounterFunc(finished, finishedHelp, "state", "canceled",
		lockedU(func() uint64 { return p.stats.Canceled }))

	m.wall = reg.Histogram("pdpad_run_wall_seconds",
		"Per-run simulation wall time.", wallBuckets)
	m.queueWait = reg.Histogram("pdpad_run_queue_wait_seconds",
		"Time each started run spent queued before admission.", wallBuckets)
	m.traceEvents = reg.Histogram("pdpad_run_trace_events",
		"Decision-trace events recorded per run (retained plus dropped).", traceEventBuckets)
	m.allocProcs = reg.Histogram("pdpad_job_alloc_processors",
		"Time-averaged processor allocation per finished job.", allocBuckets)

	m.attempts = reg.Histogram("pdpad_run_attempts",
		"Simulation attempts per run (1 = no retry).", attemptBuckets)

	m.cacheEvictions = reg.Counter("pdpad_cache_evictions_total",
		"Completed results evicted from the LRU cache to respect Config.CacheSize.")
	m.sseDropped = reg.Counter("pdpad_sse_dropped_total",
		"Lifecycle events dropped on slow SSE subscribers.")
	m.observerDropped = reg.Counter("pdpad_observer_dropped_total",
		"Lifecycle events dropped because the configured observer lagged.")
	m.retries = reg.Counter("pdpad_run_retries_total",
		"Simulation attempts retried after a transient failure.")
	m.timeouts = reg.Counter("pdpad_run_timeouts_total",
		"Simulation attempts cancelled for exceeding the per-run wall-clock timeout.")
	m.panics = reg.LabeledCounter("pdpad_recovered_panics_total",
		panicsHelp, "where", "worker")
	m.sheds = reg.Counter("pdpad_sheds_total",
		"Submissions shed with an overload rejection because the queue exceeded the shed depth.")
	m.degraded = reg.Counter("pdpad_sse_degraded_total",
		"Intermediate SSE events suppressed while the pool was overloaded.")
	m.storeErrors = reg.Counter("pdpad_store_errors_total",
		"Store operations that failed or recovered records that could not be decoded; the pool keeps serving from memory.")
	m.storeEvicted = reg.Counter("pdpad_store_evicted_runs_total",
		"Recovered runs dropped at boot to respect Config.HistoryLimit.")

	if st := p.cfg.Store; st != nil {
		reg.CounterFunc("pdpad_store_appended_entries_total",
			"Records appended to the durable store's journal.",
			func() uint64 { return st.Stats().AppendedEntries })
		reg.CounterFunc("pdpad_store_appended_bytes_total",
			"Bytes appended to the durable store's journal, framing included.",
			func() uint64 { return st.Stats().AppendedBytes })
		reg.CounterFunc("pdpad_store_fsyncs_total",
			"Batched journal fsyncs performed by the durable store.",
			func() uint64 { return st.Stats().Fsyncs })
		reg.CounterFunc("pdpad_store_compactions_total",
			"Store compactions (snapshot written, journal reset).",
			func() uint64 { return st.Stats().Compactions })
		reg.CounterFunc("pdpad_store_recovered_entries_total",
			"Records recovered from the store at boot.",
			func() uint64 { return st.Stats().RecoveredEntries })
		reg.CounterFunc("pdpad_store_truncated_tails_total",
			"Torn journal tails cut off during recovery (crash mid-append).",
			func() uint64 { return st.Stats().TruncatedTails })
		reg.CounterFunc("pdpad_store_corrupt_frames_total",
			"Journal frames dropped during recovery for a CRC mismatch.",
			func() uint64 { return st.Stats().CorruptFrames })
		reg.GaugeFunc("pdpad_store_journal_bytes",
			"Current size of the durable store's journal.",
			func() float64 { return float64(st.JournalBytes()) })
	}

	p.met = m
}

// Stats is a consistent snapshot of the pool's counters, the source for the
// daemon's /metrics endpoint.
type Stats struct {
	QueueDepth  int
	Inflight    int
	CachedRuns  int
	Draining    bool
	Submitted   uint64
	Started     uint64
	Done        uint64
	Failed      uint64
	Canceled    uint64
	CacheHits   uint64
	CacheMisses uint64
	DedupHits   uint64
	// Robustness counters: attempts retried after transient failures, runs
	// failed on the wall-clock timeout, worker panics contained, and
	// submissions shed under overload.
	Retries         uint64
	Timeouts        uint64
	RecoveredPanics uint64
	Shed            uint64
	// CacheEvictions counts completed results displaced from the LRU cache
	// by Config.CacheSize.
	CacheEvictions uint64
	Wall           WallHistogram
}

// Pool is the simulation worker pool. Create with New; all methods are safe
// for concurrent use.
type Pool struct {
	cfg Config

	mu       sync.Mutex
	seq      uint64
	runs     map[string]*run
	queue    []*run
	byKey    map[string]*run // singleflight index + result cache
	cacheLRU []string        // keys of Done runs, oldest first
	history  []string        // finished run IDs, oldest first
	running  map[*run]struct{}
	sweeps   map[string]*sweepRec
	sweepSeq uint64
	draining bool
	idle     chan struct{} // closed when draining and no work remains
	recheck  *time.Timer   // pending warm-up re-evaluation

	stats Stats
	met   *poolMetrics

	// observerCh decouples Config.Observer from the pool lock: lifecycle
	// events are enqueued non-blockingly and a dedicated goroutine delivers
	// them, so a slow observer drops events instead of stalling the pool.
	// Drain closes it once the pool is idle so a drained pool leaves no
	// goroutine behind.
	observerCh     chan pdpasim.TraceEvent
	observerClosed bool
	obsSeq         int

	// retryRNG jitters retry backoff (guarded by mu). Fixed-seeded: jitter
	// decorrelates concurrent retries, determinism keeps tests honest.
	retryRNG *rand.Rand
}

// observerBuffer bounds how many undelivered observer events may be pending.
const observerBuffer = 256

// New returns a ready pool.
func New(cfg Config) *Pool {
	p := &Pool{
		cfg:      cfg.withDefaults(),
		runs:     make(map[string]*run),
		byKey:    make(map[string]*run),
		running:  make(map[*run]struct{}),
		idle:     make(chan struct{}),
		retryRNG: rand.New(rand.NewSource(1)),
	}
	p.initMetrics()
	if p.cfg.Store != nil {
		p.rehydrate(p.cfg.Store.TakeRecovered())
	}
	if p.cfg.Observer != nil {
		p.observerCh = make(chan pdpasim.TraceEvent, p.cfg.ObserverBuffer)
		go p.forwardObserver()
	}
	return p
}

// forwardObserver delivers queued lifecycle events to Config.Observer. It
// lives until Drain settles and closes the channel (after draining any
// buffered events).
func (p *Pool) forwardObserver() {
	for e := range p.observerCh {
		p.cfg.Observer.Observe(e)
	}
}

// Metrics returns the pool's metric registry — every pdpad_* series the
// daemon exposes at /metrics, in Prometheus text exposition via
// WritePrometheus.
func (p *Pool) Metrics() *obs.Registry { return p.met.reg }

// Submit enqueues a spec. An identical spec already queued, running, or
// completed is joined instead of re-simulated (singleflight / cache hit).
// deadline bounds the run's total latency; 0 uses the pool default.
func (p *Pool) Submit(spec Spec, deadline time.Duration) (SubmitResult, error) {
	if err := spec.Validate(); err != nil {
		return SubmitResult{}, err
	}
	p.mu.Lock()
	res, err := p.submitLocked(spec, deadline)
	if err == nil {
		p.admitLocked()
	}
	p.mu.Unlock()
	if err == nil && res.CacheHit {
		// An artificially slowed cache path (chaos testing) delays only this
		// submitter, never the pool.
		p.cfg.Faults.Sleep(faults.SiteCacheHit)
	}
	return res, err
}

// submitLocked is the admission-independent core of Submit: it resolves the
// spec against the cache and singleflight index or enqueues a fresh run, but
// does not kick admission — callers submitting a batch (SubmitSweep) run the
// admission pass once after the whole batch is queued.
func (p *Pool) submitLocked(spec Spec, deadline time.Duration) (SubmitResult, error) {
	key := spec.Key()
	p.stats.Submitted++
	if existing, ok := p.byKey[key]; ok {
		if existing.state == Done {
			p.stats.CacheHits++
			p.touchCacheLocked(key)
			return SubmitResult{ID: existing.id, State: Done, CacheHit: true}, nil
		}
		p.stats.DedupHits++
		return SubmitResult{ID: existing.id, State: existing.state, Deduped: true}, nil
	}
	if p.draining {
		return SubmitResult{}, ErrDraining
	}
	if len(p.queue) >= p.cfg.QueueLimit {
		return SubmitResult{}, ErrQueueFull
	}
	if p.cfg.ShedDepth > 0 && len(p.queue) >= p.cfg.ShedDepth {
		p.met.sheds.Inc()
		return SubmitResult{}, &OverloadError{Depth: len(p.queue), RetryAfter: p.retryAfterLocked()}
	}
	p.stats.CacheMisses++
	if deadline <= 0 {
		deadline = p.cfg.DefaultDeadline
	}
	p.seq++
	r := &run{
		id:        fmt.Sprintf("run-%06d", p.seq),
		key:       key,
		spec:      spec,
		state:     Queued,
		submitted: time.Now(),
		deadline:  deadline,
		done:      make(chan struct{}),
	}
	p.runs[r.id] = r
	p.byKey[key] = r
	p.queue = append(p.queue, r)
	p.broadcastLocked(r, "")
	return SubmitResult{ID: r.id, State: r.state}, nil
}

// retryAfterLocked estimates when a shed client should retry: the queue
// drains in waves of MaxWorkers runs, each lasting about the mean wall time
// seen so far (1 s before any run has finished), clamped to [1s, 60s] and
// rounded up to whole seconds — Retry-After's granularity.
func (p *Pool) retryAfterLocked() time.Duration {
	mean := time.Second
	if s := p.met.wall.Snapshot(); s.Count > 0 {
		mean = time.Duration(s.Sum / float64(s.Count) * float64(time.Second))
	}
	waves := len(p.queue)/p.cfg.MaxWorkers + 1
	est := time.Duration(waves) * mean
	if est > 60*time.Second {
		est = 60 * time.Second
	}
	if rem := est % time.Second; rem != 0 {
		est += time.Second - rem
	}
	if est < time.Second {
		est = time.Second
	}
	return est
}

// overloadedLocked reports whether the pool is past its shed depth — the
// regime where submissions are rejected and SSE fan-out degrades.
func (p *Pool) overloadedLocked() bool {
	return p.cfg.ShedDepth > 0 && len(p.queue) >= p.cfg.ShedDepth
}

// canStartLocked is the PDPA admission rule applied to the pool: below the
// base concurrency admit unconditionally; above it, require a free slot AND
// a stable running set (every in-flight run past warm-up).
func (p *Pool) canStartLocked() bool {
	if len(p.running) < p.cfg.BaseWorkers {
		return true
	}
	if len(p.running) >= p.cfg.MaxWorkers {
		return false
	}
	now := time.Now()
	for r := range p.running {
		if now.Sub(r.started) < p.cfg.Warmup {
			return false
		}
	}
	return true
}

// admitLocked starts queued runs while admission allows, and arranges a
// re-check when the only obstacle is warm-up.
func (p *Pool) admitLocked() {
	for len(p.queue) > 0 && p.canStartLocked() {
		r := p.queue[0]
		p.queue = p.queue[1:]
		p.startLocked(r)
	}
	if len(p.queue) > 0 && len(p.running) < p.cfg.MaxWorkers {
		p.scheduleRecheckLocked()
	}
}

// scheduleRecheckLocked arms a timer for the moment the youngest in-flight
// run exits warm-up, so a held run is admitted without any new event.
func (p *Pool) scheduleRecheckLocked() {
	if p.recheck != nil {
		return
	}
	var wait time.Duration
	now := time.Now()
	for r := range p.running {
		if left := p.cfg.Warmup - now.Sub(r.started); left > wait {
			wait = left
		}
	}
	p.recheck = time.AfterFunc(wait+time.Millisecond, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.recheck = nil
		p.admitLocked()
	})
}

func (p *Pool) startLocked(r *run) {
	now := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	if r.deadline > 0 {
		remaining := r.deadline - now.Sub(r.submitted)
		if remaining <= 0 {
			cancel()
			r.state = Failed
			r.err = fmt.Errorf("runqueue: deadline %v expired while queued: %w",
				r.deadline, context.DeadlineExceeded)
			p.finishLocked(r, "")
			return
		}
		ctx, cancel = context.WithTimeout(ctx, remaining)
	}
	r.state = Running
	r.started = now
	r.cancel = cancel
	p.running[r] = struct{}{}
	p.stats.Started++
	p.met.queueWait.Observe(now.Sub(r.submitted).Seconds())
	p.broadcastLocked(r, "")
	go p.execute(ctx, cancel, r)
}

// isTransient reports whether err marks itself retryable by exposing
// Transient() bool. Cancellations, deadlines, timeouts, and recovered
// panics never do.
func isTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// maxRetryBackoff caps a single retry pause.
const maxRetryBackoff = 5 * time.Second

// backoffFor returns the pause before retry n (0-based): the base backoff
// doubled per retry, capped, plus up to 50% seeded jitter so synchronized
// retries don't re-collide.
func (p *Pool) backoffFor(n int) time.Duration {
	d := p.cfg.RetryBackoff << uint(n)
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	p.mu.Lock()
	jitter := time.Duration(p.retryRNG.Int63n(int64(d)/2 + 1))
	p.mu.Unlock()
	return d + jitter
}

// attempt executes one simulation attempt under the per-attempt timeout,
// with fault-injection sites around it and panic containment: a panicking
// worker fails the attempt, never the pool.
func (p *Pool) attempt(ctx context.Context, r *run) (out *pdpasim.Outcome, err error) {
	actx := ctx
	cancel := context.CancelFunc(func() {})
	if p.cfg.RunTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, p.cfg.RunTimeout)
	}
	defer cancel()
	defer func() {
		if rec := recover(); rec != nil {
			p.met.panics.Inc()
			out, err = nil, fmt.Errorf("runqueue: recovered worker panic: %v", rec)
		}
	}()
	if err = p.cfg.Faults.Hit(actx, faults.SiteWorkerStart); err == nil {
		out, err = p.cfg.Simulate(actx, r.spec)
		if err == nil {
			if err = p.cfg.Faults.Hit(actx, faults.SiteWorkerFinish); err != nil {
				out = nil
			}
		}
	}
	// A failure caused by the attempt timeout (and not by the run's own
	// deadline or cancellation) is reported as ErrRunTimeout — and is not
	// transient, so it is never retried.
	if err != nil && p.cfg.RunTimeout > 0 && ctx.Err() == nil &&
		errors.Is(actx.Err(), context.DeadlineExceeded) {
		p.met.timeouts.Inc()
		err = fmt.Errorf("runqueue: no result within run timeout %v: %w", p.cfg.RunTimeout, ErrRunTimeout)
	}
	return out, err
}

// runAttempts drives the bounded-retry loop: transient failures are retried
// up to MaxRetries times with exponential backoff plus jitter; everything
// else — success, cancellation, deadline, timeout, panic — settles the run.
func (p *Pool) runAttempts(ctx context.Context, r *run) (*pdpasim.Outcome, error) {
	for n := 0; ; n++ {
		out, err := p.attempt(ctx, r)
		if err == nil || n >= p.cfg.MaxRetries || !isTransient(err) || ctx.Err() != nil {
			p.met.attempts.Observe(float64(n + 1))
			return out, err
		}
		p.met.retries.Inc()
		pause := time.NewTimer(p.backoffFor(n))
		select {
		case <-pause.C:
		case <-ctx.Done():
			pause.Stop()
			p.met.attempts.Observe(float64(n + 1))
			return nil, fmt.Errorf("runqueue: %w while backing off from retryable failure: %v", ctx.Err(), err)
		}
	}
}

// execute runs the simulation outside the lock — timeout-bounded, retried on
// transient failures, panic-contained — and records the outcome.
func (p *Pool) execute(ctx context.Context, cancel context.CancelFunc, r *run) {
	defer cancel()
	span := obs.StartSpan(p.met.wall)
	out, err := p.runAttempts(ctx, r)
	span.End()
	var buf bytes.Buffer
	var traceJSON []byte
	if err == nil {
		if out == nil {
			err = errors.New("runqueue: simulation returned no outcome")
		} else {
			err = out.WriteJSON(&buf)
			if dt := out.DecisionTrace(); dt != nil {
				var tb bytes.Buffer
				if dt.WriteJSON(&tb) == nil {
					traceJSON = tb.Bytes()
				}
				p.met.traceEvents.Observe(float64(dt.Len() + dt.Dropped()))
			}
			for _, j := range out.Jobs {
				p.met.allocProcs.Observe(j.AvgProcessors)
			}
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.running, r)
	switch {
	case err == nil:
		r.state = Done
		r.resultJSON = buf.Bytes()
		r.traceJSON = traceJSON
	case r.cancelRequested || errors.Is(err, context.Canceled):
		r.state = Canceled
		r.err = err
	default:
		r.state = Failed
		r.err = err
	}
	msg := ""
	if r.err != nil {
		msg = r.err.Error()
	}
	p.finishLocked(r, msg)
	p.admitLocked()
}

// finishLocked settles a terminal run: cache bookkeeping, history eviction,
// persistence, subscriber notification, drain signalling. Timestamps are
// wall-normalized (monotonic reading stripped) so a run's externally
// visible timings survive a store round trip byte-identically.
func (p *Pool) finishLocked(r *run, msg string) {
	r.finished = time.Now().Round(0)
	r.submitted = r.submitted.Round(0)
	r.started = r.started.Round(0)
	switch r.state {
	case Done:
		p.stats.Done++
		p.insertCacheLocked(r)
	case Failed:
		p.stats.Failed++
	case Canceled:
		p.stats.Canceled++
	}
	if r.state != Done && p.byKey[r.key] == r {
		// Failed and cancelled runs must not satisfy future submissions.
		delete(p.byKey, r.key)
	}
	p.broadcastLocked(r, msg)
	close(r.done)
	for _, ch := range r.subs {
		close(ch)
	}
	r.subs = nil
	p.history = append(p.history, r.id)
	p.evictHistoryLocked()
	p.persistRunLocked(r)
	p.signalIdleLocked()
}

// insertCacheLocked records a completed run in the LRU result cache.
func (p *Pool) insertCacheLocked(r *run) {
	p.cacheLRU = append(p.cacheLRU, r.key)
	for len(p.cacheLRU) > p.cfg.CacheSize {
		oldest := p.cacheLRU[0]
		p.cacheLRU = p.cacheLRU[1:]
		if cached, ok := p.byKey[oldest]; ok && cached.state == Done {
			delete(p.byKey, oldest)
		}
		p.met.cacheEvictions.Inc()
	}
}

// touchCacheLocked moves key to the LRU's fresh end.
func (p *Pool) touchCacheLocked(key string) {
	for i, k := range p.cacheLRU {
		if k == key {
			p.cacheLRU = append(append(p.cacheLRU[:i:i], p.cacheLRU[i+1:]...), key)
			return
		}
	}
}

// evictHistoryLocked forgets the oldest finished runs beyond HistoryLimit,
// keeping cached ones addressable.
func (p *Pool) evictHistoryLocked() {
	for len(p.history) > p.cfg.HistoryLimit {
		id := p.history[0]
		r, ok := p.runs[id]
		if ok && p.byKey[r.key] == r {
			// Still serving cache hits; spare it this round by rotating.
			p.history = append(p.history[1:], id)
			return
		}
		p.history = p.history[1:]
		delete(p.runs, id)
	}
}

func (p *Pool) signalIdleLocked() {
	if p.draining && len(p.running) == 0 && len(p.queue) == 0 {
		select {
		case <-p.idle:
		default:
			close(p.idle)
		}
	}
}

// broadcastLocked fans the run's current state out to subscribers and the
// pool observer. Sends never block: a slow subscriber drops intermediate
// events — counted in pdpad_sse_dropped_total — and the SSE handler re-reads
// the final state via Get, so the terminal transition is never lost.
func (p *Pool) broadcastLocked(r *run, msg string) {
	p.notifyObserverLocked(r, msg)
	if len(r.subs) == 0 {
		return
	}
	// Graceful degradation: past the shed depth, intermediate fan-out is
	// suppressed wholesale — terminal transitions still flow, and the SSE
	// handler re-reads the final state on channel close, so no client
	// misses an outcome while the pool sheds per-subscriber work.
	if !r.state.Terminal() && p.overloadedLocked() {
		p.met.degraded.Add(uint64(len(r.subs)))
		return
	}
	ev := Event{RunID: r.id, State: r.state, At: time.Now(), Message: msg}
	for _, ch := range r.subs {
		select {
		case ch <- ev:
		default:
			p.met.sseDropped.Inc()
		}
	}
}

// notifyObserverLocked enqueues one "run_state" TraceEvent for the pool
// observer without blocking: overflow is dropped and counted.
func (p *Pool) notifyObserverLocked(r *run, msg string) {
	if p.observerCh == nil || p.observerClosed {
		return
	}
	e := pdpasim.TraceEvent{
		Seq:    p.obsSeq,
		Kind:   "run_state",
		Job:    -1,
		ID:     r.id,
		State:  string(r.state),
		Reason: msg,
	}
	p.obsSeq++
	select {
	case p.observerCh <- e:
	default:
		p.met.observerDropped.Inc()
	}
}

// Subscribe returns a channel of lifecycle events for a run, beginning with
// its current state. The channel closes once the run is terminal (or when
// the returned cancel function is called).
func (p *Pool) Subscribe(id string) (<-chan Event, func(), error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.runs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan Event, p.cfg.EventBuffer)
	ch <- Event{RunID: r.id, State: r.state, At: time.Now()}
	if r.state.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	r.subs = append(r.subs, ch)
	unsub := func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		for i, c := range r.subs {
			if c == ch {
				r.subs = append(r.subs[:i], r.subs[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, unsub, nil
}

func (r *run) snapshotLocked() Snapshot {
	return Snapshot{
		ID:         r.id,
		Key:        r.key,
		Spec:       r.spec,
		State:      r.state,
		Err:        r.err,
		Submitted:  r.submitted,
		Started:    r.started,
		Finished:   r.finished,
		ResultJSON: r.resultJSON,
		TraceJSON:  r.traceJSON,
	}
}

// Get returns a snapshot of a run.
func (p *Pool) Get(id string) (Snapshot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.runs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return r.snapshotLocked(), nil
}

// Runs lists snapshots of every known run, newest first.
func (p *Pool) Runs() []Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Snapshot, 0, len(p.runs))
	for _, r := range p.runs {
		out = append(out, r.snapshotLocked())
	}
	// Newest first: IDs are zero-padded sequence numbers, so they compare
	// lexicographically.
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// Done returns a channel closed when the run reaches a terminal state.
func (p *Pool) Done(id string) (<-chan struct{}, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.runs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return r.done, nil
}

// Cancel aborts a run: a queued run is removed immediately, a running one
// has its context cancelled and the simulation aborts at its next interrupt
// check. Cancelling a terminal run is a no-op. The returned snapshot
// reflects the state at return.
func (p *Pool) Cancel(id string) (Snapshot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.runs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	switch r.state {
	case Queued:
		for i, q := range p.queue {
			if q == r {
				p.queue = append(p.queue[:i], p.queue[i+1:]...)
				break
			}
		}
		r.state = Canceled
		r.err = context.Canceled
		p.finishLocked(r, "cancelled while queued")
	case Running:
		r.cancelRequested = true
		r.cancel()
	}
	return r.snapshotLocked(), nil
}

// Drain gracefully shuts the pool down: new submissions are rejected, the
// queue keeps draining, and Drain returns once every run has finished. If
// ctx expires first, all remaining work is cancelled and ctx's error is
// returned.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	p.draining = true
	p.signalIdleLocked()
	idle := p.idle
	p.mu.Unlock()

	select {
	case <-idle:
		p.stopBackground()
		return nil
	case <-ctx.Done():
	}

	// Forced: cancel everything still moving, then wait for the workers to
	// observe it.
	p.mu.Lock()
	for _, r := range p.queue {
		r.state = Canceled
		r.err = context.Canceled
		p.finishLocked(r, "cancelled at shutdown")
	}
	p.queue = nil
	for r := range p.running {
		r.cancelRequested = true
		r.cancel()
	}
	p.mu.Unlock()
	<-idle
	p.stopBackground()
	return ctx.Err()
}

// stopBackground ends the pool's housekeeping once a drain has settled: the
// warm-up recheck timer and the observer forwarding goroutine (which drains
// its buffer and exits), so a drained pool leaves no goroutines behind.
func (p *Pool) stopBackground() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.recheck != nil {
		p.recheck.Stop()
		p.recheck = nil
	}
	if p.observerCh != nil && !p.observerClosed {
		p.observerClosed = true
		close(p.observerCh)
	}
}

// Stats returns a consistent snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.QueueDepth = len(p.queue)
	s.Inflight = len(p.running)
	s.CachedRuns = len(p.cacheLRU)
	s.Draining = p.draining
	s.Retries = p.met.retries.Value()
	s.Timeouts = p.met.timeouts.Value()
	s.RecoveredPanics = p.met.panics.Value()
	s.Shed = p.met.sheds.Value()
	s.CacheEvictions = p.met.cacheEvictions.Value()
	s.Wall = wallFromSnapshot(p.met.wall.Snapshot())
	return s
}
