package runqueue

// The pool's persistence schema over internal/store: every run that reaches
// a terminal state is appended to the journal as one runRecord, every
// accepted sweep as one sweepRecord, and a restarted pool rehydrates its
// result cache, run history, and sweep index from the recovered records —
// so a kill -9 loses at most the in-flight work, never a completed result.
// Result and trace bytes are carried as []byte (base64 on the wire), which
// keeps the recovered outcome JSON byte-identical to what the pool served
// before the crash — the property that makes recovered results
// cache-substitutable for fresh simulations.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"pdpasim/internal/store"
)

// Record kinds in the store.
const (
	kindRun   = "run"
	kindSweep = "sweep"
)

// runRecord is the durable form of one terminal run.
type runRecord struct {
	ID        string    `json:"id"`
	Key       string    `json:"key"`
	Spec      Spec      `json:"spec"`
	State     State     `json:"state"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished"`
	// Result and Trace hold the exact serialized bytes the run produced.
	Result []byte `json:"result,omitempty"`
	Trace  []byte `json:"trace,omitempty"`
}

// sweepRecord is the durable form of one accepted sweep: the grid and its
// member run IDs. Member results live in their own runRecords.
type sweepRecord struct {
	ID        string    `json:"id"`
	Spec      SweepSpec `json:"spec"`
	RunIDs    []string  `json:"run_ids"`
	Submitted time.Time `json:"submitted"`
}

func (r *run) record() runRecord {
	rec := runRecord{
		ID:        r.id,
		Key:       r.key,
		Spec:      r.spec,
		State:     r.state,
		Submitted: r.submitted,
		Started:   r.started,
		Finished:  r.finished,
		Result:    r.resultJSON,
		Trace:     r.traceJSON,
	}
	if r.err != nil {
		rec.Error = r.err.Error()
	}
	return rec
}

// persistRunLocked appends a terminal run to the store and triggers a
// compaction when the journal has outgrown its bound. Store failures must
// never fail the run — they are counted and the pool keeps serving from
// memory.
func (p *Pool) persistRunLocked(r *run) {
	if p.cfg.Store == nil {
		return
	}
	payload, err := json.Marshal(r.record())
	if err != nil {
		p.met.storeErrors.Inc()
		return
	}
	if err := p.cfg.Store.Append(store.Record{Kind: kindRun, Payload: payload}); err != nil {
		p.met.storeErrors.Inc()
		return
	}
	p.maybeCompactLocked()
}

// persistSweepLocked appends an accepted sweep's record.
func (p *Pool) persistSweepLocked(rec *sweepRec) {
	if p.cfg.Store == nil {
		return
	}
	payload, err := json.Marshal(sweepRecord{
		ID: rec.id, Spec: rec.spec, RunIDs: rec.runIDs, Submitted: rec.submitted,
	})
	if err != nil {
		p.met.storeErrors.Inc()
		return
	}
	if err := p.cfg.Store.Append(store.Record{Kind: kindSweep, Payload: payload}); err != nil {
		p.met.storeErrors.Inc()
	}
}

// maybeCompactLocked rewrites the store from the live record set once the
// journal exceeds the configured bound, dropping history-evicted runs from
// disk. Compaction is rare (it runs once per StoreCompactBytes of journal
// growth) and the snapshot fsync is the only heavy step.
func (p *Pool) maybeCompactLocked() {
	if p.cfg.Store.JournalBytes() < p.cfg.StoreCompactBytes {
		return
	}
	if err := p.cfg.Store.Compact(p.liveRecordsLocked()); err != nil {
		p.met.storeErrors.Inc()
	}
}

// liveRecordsLocked serializes the pool's durable state: every terminal run
// still addressable (history order, so recovery replays oldest first) and
// every known sweep.
func (p *Pool) liveRecordsLocked() []store.Record {
	var out []store.Record
	for _, id := range p.history {
		r, ok := p.runs[id]
		if !ok || !r.state.Terminal() {
			continue
		}
		if payload, err := json.Marshal(r.record()); err == nil {
			out = append(out, store.Record{Kind: kindRun, Payload: payload})
		}
	}
	ids := make([]string, 0, len(p.sweeps))
	for id := range p.sweeps {
		ids = append(ids, id)
	}
	// Sweep IDs are zero-padded sequence numbers; lexicographic order is
	// submission order.
	sort.Strings(ids)
	for _, id := range ids {
		rec := p.sweeps[id]
		if payload, err := json.Marshal(sweepRecord{
			ID: rec.id, Spec: rec.spec, RunIDs: rec.runIDs, Submitted: rec.submitted,
		}); err == nil {
			out = append(out, store.Record{Kind: kindSweep, Payload: payload})
		}
	}
	return out
}

// rehydrate rebuilds the pool's terminal-run state from recovered records.
// It runs inside New, before the pool accepts work, so no locking is
// needed. Recovered runs re-enter the result cache and history under the
// same bounds as live ones: cache overflow counts cache evictions, history
// overflow counts store evictions.
func (p *Pool) rehydrate(recs []store.Record) {
	for _, rec := range recs {
		switch rec.Kind {
		case kindRun:
			var rr runRecord
			if err := json.Unmarshal(rec.Payload, &rr); err != nil || rr.ID == "" || !rr.State.Terminal() {
				p.met.storeErrors.Inc()
				continue
			}
			if _, exists := p.runs[rr.ID]; exists {
				continue
			}
			r := &run{
				id:         rr.ID,
				key:        rr.Key,
				spec:       rr.Spec,
				state:      rr.State,
				submitted:  rr.Submitted,
				started:    rr.Started,
				finished:   rr.Finished,
				resultJSON: rr.Result,
				traceJSON:  rr.Trace,
				done:       closedChan,
			}
			if rr.Error != "" {
				r.err = errors.New(rr.Error)
			}
			p.runs[r.id] = r
			p.history = append(p.history, r.id)
			if r.state == Done {
				p.byKey[r.key] = r
				p.insertCacheLocked(r)
			}
			if n, ok := seqOf(r.id, "run-"); ok && n > p.seq {
				p.seq = n
			}
		case kindSweep:
			var sr sweepRecord
			if err := json.Unmarshal(rec.Payload, &sr); err != nil || sr.ID == "" {
				p.met.storeErrors.Inc()
				continue
			}
			if p.sweeps == nil {
				p.sweeps = make(map[string]*sweepRec)
			}
			p.sweeps[sr.ID] = &sweepRec{
				id: sr.ID, spec: sr.Spec, runIDs: sr.RunIDs, submitted: sr.Submitted,
			}
			if n, ok := seqOf(sr.ID, "sweep-"); ok && n > p.sweepSeq {
				p.sweepSeq = n
			}
		}
	}
	// The recovered history obeys the same bound as a live one; overflow
	// beyond HistoryLimit is dropped (oldest first) and counted.
	before := len(p.history)
	p.evictHistoryLocked()
	if dropped := before - len(p.history); dropped > 0 {
		p.met.storeEvicted.Add(uint64(dropped))
	}
}

// closedChan is the pre-closed done channel recovered terminal runs share.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// seqOf parses the numeric suffix of a "run-%06d" / "sweep-%06d" ID.
func seqOf(id, prefix string) (uint64, bool) {
	var n uint64
	if _, err := fmt.Sscanf(id, prefix+"%d", &n); err != nil {
		return 0, false
	}
	return n, true
}
