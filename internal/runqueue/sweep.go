package runqueue

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"pdpasim"
	"pdpasim/internal/metrics"
	"pdpasim/internal/sweep"
)

// SweepSpec is the wire form of a sweep submission: the policy × mix × load
// × seed grid pdpasim.Sweep runs in process, expressed as a batch of member
// runs. Every member flows through the pool's ordinary machinery — the
// PDPA-style MPL admission rule, the canonical-config result cache, and
// singleflight deduplication — so overlapping sweeps share simulations
// instead of repeating them.
type SweepSpec struct {
	// Policies and Mixes span the grid (required, at least one each).
	Policies []string `json:"policies"`
	Mixes    []string `json:"mixes"`
	// Loads are the demand levels; empty means {1.0}.
	Loads []float64 `json:"loads,omitempty"`
	// Seeds are the replicate seeds aggregated per cell; empty means {0}.
	// Each member run uses its seed for both the workload and the
	// measurement noise, matching the in-process engine.
	Seeds []int64 `json:"seeds,omitempty"`
	// NCPU, WindowS, and UniformRequest parameterize workload generation
	// exactly as WorkloadSpec does.
	NCPU           int     `json:"ncpu,omitempty"`
	WindowS        float64 `json:"window_s,omitempty"`
	UniformRequest int     `json:"uniform_request,omitempty"`
	// Options carries the scheduling knobs shared by every member (PDPA
	// parameter overrides, fixed MPL, noise, NUMA). Its Policy and Seed
	// fields are ignored: the grid supplies them per member.
	Options RunOptions `json:"options,omitempty"`
}

func (s SweepSpec) withDefaults() SweepSpec {
	if len(s.Loads) == 0 {
		s.Loads = []float64{1.0}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{0}
	}
	return s
}

// WithDefaults returns the spec with the grid defaults made explicit
// (loads {1.0}, seeds {0}) — the resolved form statuses report and the
// fleet coordinator shards.
func (s SweepSpec) WithDefaults() SweepSpec { return s.withDefaults() }

// Members expands the grid into one Spec per run, cells enumerated mixes →
// loads → policies with each cell's seeds contiguous — the same order the
// in-process engine uses, so the aggregated cells line up.
func (s SweepSpec) Members() []Spec {
	s = s.withDefaults()
	var out []Spec
	for _, mix := range s.Mixes {
		for _, load := range s.Loads {
			for _, pol := range s.Policies {
				for _, seed := range s.Seeds {
					opts := s.Options
					opts.Policy = pol
					opts.Seed = seed
					out = append(out, Spec{
						Workload: WorkloadSpec{
							Mix: mix, Load: load, NCPU: s.NCPU,
							WindowS: s.WindowS, Seed: seed,
							UniformRequest: s.UniformRequest,
						},
						Options: opts,
					})
				}
			}
		}
	}
	return out
}

// Validate checks the whole grid: every member must be individually valid.
func (s SweepSpec) Validate() error {
	if len(s.Policies) == 0 {
		return fmt.Errorf("runqueue: sweep needs at least one policy")
	}
	if len(s.Mixes) == 0 {
		return fmt.Errorf("runqueue: sweep needs at least one mix")
	}
	for _, m := range s.Members() {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// sweepRec is the pool's record of one submitted sweep. Immutable after
// creation; member state lives in the member runs.
type sweepRec struct {
	id        string
	spec      SweepSpec // defaults resolved
	runIDs    []string  // one per member, grid order
	submitted time.Time
}

// SweepSubmitResult reports how a sweep submission was resolved.
type SweepSubmitResult struct {
	ID string
	// RunIDs are the member run IDs in grid order (cells in mixes → loads →
	// policies order, seeds contiguous).
	RunIDs []string
	// CacheHits and Deduped count members resolved without new simulation.
	CacheHits int
	Deduped   int
}

// SweepCell is one aggregated grid cell in a sweep's status.
type SweepCell = sweep.Cell

// SweepStatus is a consistent snapshot of a sweep's progress and, once every
// member is done, its per-cell aggregates.
type SweepStatus struct {
	ID        string
	Spec      SweepSpec
	Submitted time.Time
	// State summarizes the members: "failed" or "canceled" if any member
	// ended that way, "done" when all succeeded, else "running" ("queued"
	// until the first member starts).
	State State
	// Done counts members in a terminal state; Total is the grid size.
	Done  int
	Total int
	// RunIDs are the member run IDs in grid order.
	RunIDs []string
	// Errors collects distinct member failure messages (at most one per
	// member, grid order).
	Errors []string
	// Cells holds the per-cell aggregates (mean, stddev, 95% CI over the
	// seed replicates), present only when State is Done. Every member result
	// uses the same Outcome JSON schema as GET /v1/runs/{id}.
	Cells []SweepCell
}

// SubmitSweep atomically submits every member of the grid: either the whole
// batch is accepted (members resolved against the cache and singleflight
// index count as accepted) or nothing is enqueued. The admission controller
// then starts members under the same PDPA-MPL rule as individually submitted
// runs. deadline applies to each member individually.
func (p *Pool) SubmitSweep(spec SweepSpec, deadline time.Duration) (SweepSubmitResult, error) {
	if err := spec.Validate(); err != nil {
		return SweepSubmitResult{}, err
	}
	resolved := spec.withDefaults()
	members := resolved.Members()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return SweepSubmitResult{}, ErrDraining
	}
	// Capacity pre-check so a too-large sweep fails atomically instead of
	// enqueueing a truncated grid. Members already cached, deduplicated, or
	// duplicated inside the sweep need no queue slot; counting every
	// remaining member as fresh over-estimates, never under-estimates.
	fresh := 0
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		key := m.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := p.byKey[key]; !ok {
			fresh++
		}
	}
	if len(p.queue)+fresh > p.cfg.QueueLimit {
		return SweepSubmitResult{}, ErrQueueFull
	}
	// Load shedding applies to the batch as a whole: were any member going
	// to land past the shed depth, submitLocked would reject it mid-batch —
	// shed the sweep up front instead, keeping batch admission atomic.
	if p.cfg.ShedDepth > 0 && len(p.queue)+fresh > p.cfg.ShedDepth {
		p.met.sheds.Inc()
		return SweepSubmitResult{}, &OverloadError{Depth: len(p.queue), RetryAfter: p.retryAfterLocked()}
	}

	res := SweepSubmitResult{RunIDs: make([]string, 0, len(members))}
	for _, m := range members {
		sub, err := p.submitLocked(m, deadline)
		if err != nil {
			// Unreachable after the pre-checks; fail loudly if it ever isn't.
			panic("runqueue: sweep member rejected after capacity check: " + err.Error())
		}
		res.RunIDs = append(res.RunIDs, sub.ID)
		if sub.CacheHit {
			res.CacheHits++
		}
		if sub.Deduped {
			res.Deduped++
		}
	}
	p.sweepSeq++
	rec := &sweepRec{
		id:        fmt.Sprintf("sweep-%06d", p.sweepSeq),
		spec:      resolved,
		runIDs:    res.RunIDs,
		submitted: time.Now(),
	}
	if p.sweeps == nil {
		p.sweeps = make(map[string]*sweepRec)
	}
	p.sweeps[rec.id] = rec
	p.persistSweepLocked(rec)
	res.ID = rec.id
	p.admitLocked()
	return res, nil
}

// GetSweep returns a sweep's aggregated status. Cells are computed from the
// members' cached result JSON once every member is done.
func (p *Pool) GetSweep(id string) (SweepStatus, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.sweeps[id]
	if !ok {
		return SweepStatus{}, ErrNotFound
	}
	return p.sweepStatusLocked(rec)
}

// Sweeps lists every known sweep's status, newest first.
func (p *Pool) Sweeps() []SweepStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SweepStatus, 0, len(p.sweeps))
	for _, rec := range p.sweeps {
		st, err := p.sweepStatusLocked(rec)
		if err != nil {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// CancelSweep cancels every non-terminal member. Members shared with other
// submissions (deduplicated runs) are cancelled too — the pool has no
// per-subscriber reference counting.
func (p *Pool) CancelSweep(id string) (SweepStatus, error) {
	p.mu.Lock()
	rec, ok := p.sweeps[id]
	if !ok {
		p.mu.Unlock()
		return SweepStatus{}, ErrNotFound
	}
	ids := append([]string(nil), rec.runIDs...)
	p.mu.Unlock()
	for _, runID := range ids {
		p.Cancel(runID) // unknown IDs (evicted history) are skipped below
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sweepStatusLocked(rec)
}

func (p *Pool) sweepStatusLocked(rec *sweepRec) (SweepStatus, error) {
	st := SweepStatus{
		ID:        rec.id,
		Spec:      rec.spec,
		Submitted: rec.submitted,
		Total:     len(rec.runIDs),
		RunIDs:    rec.runIDs,
		State:     Queued,
	}
	allDone := true
	anyStarted := false
	var exports []metrics.Export
	for _, runID := range rec.runIDs {
		r, ok := p.runs[runID]
		if !ok {
			// Member evicted from history: its result is gone; the sweep can
			// no longer be aggregated.
			st.Errors = append(st.Errors, fmt.Sprintf("%s: evicted from history", runID))
			st.State = Failed
			return st, nil
		}
		if r.state != Queued {
			anyStarted = true
		}
		if r.state.Terminal() {
			st.Done++
		}
		switch r.state {
		case Done:
			if allDone {
				var ex metrics.Export
				if err := json.Unmarshal(r.resultJSON, &ex); err != nil {
					st.Errors = append(st.Errors, fmt.Sprintf("%s: decoding result: %v", runID, err))
					st.State = Failed
					return st, nil
				}
				exports = append(exports, ex)
			}
		case Failed:
			allDone = false
			st.State = Failed
			if r.err != nil {
				st.Errors = append(st.Errors, fmt.Sprintf("%s: %v", runID, r.err))
			}
		case Canceled:
			allDone = false
			if st.State != Failed {
				st.State = Canceled
			}
		default:
			allDone = false
		}
	}
	if st.State == Queued && anyStarted {
		st.State = Running
	}
	if !allDone {
		return st, nil
	}
	st.State = Done
	// Aggregate exactly as the in-process engine does: cells in grid order,
	// each over its contiguous block of seed replicates.
	nseeds := len(rec.spec.Seeds)
	i := 0
	for _, mix := range rec.spec.Mixes {
		for _, load := range rec.spec.Loads {
			for _, pol := range rec.spec.Policies {
				st.Cells = append(st.Cells, sweep.Summarize(
					canonicalPolicy(pol), mix, load, rec.spec.Seeds, exports[i:i+nseeds]))
				i += nseeds
			}
		}
	}
	return st, nil
}

// canonicalPolicy renders the policy name as the simulator reports it, so
// sweep cells match the "policy" field of the member results.
func canonicalPolicy(pol string) string {
	if p, err := pdpasim.ParsePolicy(pol); err == nil {
		return string(p)
	}
	return pol
}
