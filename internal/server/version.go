package server

// The versioned half of the wire surface. Every pdpad role answers GET
// /v1/version with its build info, the API revision it speaks, and which
// role it plays; the fleet coordinator rejects node registrations whose
// revision differs from its own with CodeIncompatibleRevision, so a mixed
// deploy fails loudly at join time instead of corrupting a sweep later.

import (
	"net/http"
	"runtime"
	"runtime/debug"
)

// APIRevision is the revision of the v1 wire surface this build speaks.
// Bump it when a change would make a coordinator and a node disagree about
// request or response shapes; nodes with a different revision are refused
// at registration. Revision 2 added POST /v1/runs/reconcile, which a
// recovering coordinator requires every node to serve.
const APIRevision = 2

// Roles a pdpad process can serve in, reported by GET /v1/version.
const (
	RoleStandalone  = "standalone"
	RoleCoordinator = "coordinator"
	RoleNode        = "node"
)

// VersionInfo is the GET /v1/version payload.
type VersionInfo struct {
	Service string `json:"service"`
	// Version is the main module's build version ("(devel)" for plain
	// go-build trees).
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	// APIRevision is the wire-surface revision; see the package constant.
	APIRevision int `json:"api_revision"`
	// Role is standalone, coordinator, or node.
	Role string `json:"role"`
}

// Version describes this build serving in the given role.
func Version(role string) VersionInfo {
	v := VersionInfo{
		Service:     "pdpad",
		Version:     "(devel)",
		GoVersion:   runtime.Version(),
		APIRevision: APIRevision,
		Role:        role,
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	return v
}

// WithRole sets the role GET /v1/version reports (default RoleStandalone).
func WithRole(role string) Option {
	return func(s *Server) { s.role = role }
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, Version(s.role))
}
