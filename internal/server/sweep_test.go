package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/internal/runqueue"
)

func postSweep(t *testing.T, ts *httptest.Server, body string) (SweepSubmitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SweepSubmitResponse
	if resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return sr, resp.StatusCode
}

func getSweep(t *testing.T, ts *httptest.Server, id string) SweepView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET sweep %s: status %d", id, resp.StatusCode)
	}
	var v SweepView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitSweepState(t *testing.T, ts *httptest.Server, id, want string) SweepView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		v := getSweep(t, ts, id)
		if v.State == want {
			return v
		}
		if runqueue.State(v.State).Terminal() {
			t.Fatalf("sweep %s reached %s (errors %v), want %s", id, v.State, v.Errors, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached %s", id, want)
	return SweepView{}
}

const sweepBody = `{"policies":["equip","pdpa"],"mixes":["w1"],"loads":[0.6],"seeds":[1,2],"window_s":60}`

// TestSweepSubmitAndStatus drives a real grid through the HTTP surface:
// submit, poll to done, and check per-cell aggregates on the detail view.
func TestSweepSubmitAndStatus(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{})
	sr, status := postSweep(t, ts, sweepBody)
	if status != http.StatusAccepted {
		t.Fatalf("status %d, want 202", status)
	}
	if len(sr.RunIDs) != 4 {
		t.Fatalf("expected 4 member runs, got %d", len(sr.RunIDs))
	}
	v := waitSweepState(t, ts, sr.ID, "done")
	if v.Done != 4 || v.Total != 4 {
		t.Fatalf("done %d/%d, want 4/4", v.Done, v.Total)
	}
	if len(v.Cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(v.Cells))
	}
	for _, c := range v.Cells {
		if c.Makespan.N != 2 || c.Makespan.Mean <= 0 {
			t.Fatalf("bad cell aggregates: %+v", c)
		}
	}
	// Member runs are ordinary runs reachable through the runs API, with the
	// same Outcome JSON schema as any individually submitted run.
	rv := getRun(t, ts, sr.RunIDs[0])
	if rv.State != "done" || len(rv.Result) == 0 {
		t.Fatalf("member run %s: state %s, result %d bytes", sr.RunIDs[0], rv.State, len(rv.Result))
	}
}

// TestSweepSharesCacheOverHTTP: a sweep overlapping a completed individual
// run reports the cache hit in the submit response.
func TestSweepSharesCacheOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{})
	// Sweep members use the workload seed for the scheduling noise too, so
	// match that in the individual submission.
	run, _ := postRun(t, ts,
		`{"workload":{"mix":"w1","load":0.6,"window_s":60,"seed":1},"options":{"policy":"equip","seed":1}}`)
	waitRunState(t, ts, run.ID, "done")

	sr, status := postSweep(t, ts, sweepBody)
	if status != http.StatusAccepted {
		t.Fatalf("status %d, want 202", status)
	}
	if sr.CacheHits != 1 {
		t.Fatalf("cache hits %d, want 1", sr.CacheHits)
	}
	waitSweepState(t, ts, sr.ID, "done")
}

// TestSweepListAndCancel: the listing shows sweeps newest-first without
// detail fields, and DELETE cancels in-flight members.
func TestSweepListAndCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	blocking := func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	ts, _ := newTestServer(t, runqueue.Config{Simulate: blocking})
	sr, _ := postSweep(t, ts, sweepBody)

	resp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Sweeps []SweepView `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != sr.ID {
		t.Fatalf("listing wrong: %+v", list.Sweeps)
	}
	if len(list.Sweeps[0].RunIDs) != 0 || len(list.Sweeps[0].Cells) != 0 {
		t.Fatal("listing leaked detail fields")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+sr.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", dresp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := getSweep(t, ts, sr.ID)
		if v.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in %s after cancel", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepValidationErrors: malformed grids are rejected with 400, unknown
// sweeps 404, and an oversized grid gets 429 without enqueueing anything.
func TestSweepValidationErrors(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{QueueLimit: 3})
	for _, body := range []string{
		`{not json`,
		`{"mixes":["w1"]}`,
		`{"policies":["pdpa"]}`,
		`{"policies":["bogus"],"mixes":["w1"]}`,
		`{"policies":["pdpa"],"mixes":["w9"]}`,
		`{"policies":["pdpa"],"mixes":["w1"],"deadline_s":-1}`,
		`{"policies":["pdpa"],"mixes":["w1"],"surprise":true}`,
	} {
		if _, status := postSweep(t, ts, body); status != http.StatusBadRequest {
			t.Errorf("payload %q: status %d, want 400", body, status)
		}
	}
	if _, status := postSweep(t, ts, sweepBody); status != http.StatusTooManyRequests {
		t.Errorf("oversized sweep: status %d, want 429", status)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/sweep-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep status %d, want 404", resp.StatusCode)
	}
}
