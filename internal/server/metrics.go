package server

import (
	"fmt"
	"net/http"
	"strconv"
)

// handleMetrics renders the pool's counters in the Prometheus text
// exposition format (version 0.0.4), hand-rolled to keep the daemon
// dependency-free.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, formatFloat(v))
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, help, name, name, v)
	}

	gauge("pdpad_queue_depth", "Runs waiting in the FIFO queue.", float64(st.QueueDepth))
	gauge("pdpad_inflight_runs", "Simulations currently executing.", float64(st.Inflight))
	gauge("pdpad_cached_results", "Completed results held in the LRU cache.", float64(st.CachedRuns))
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	gauge("pdpad_draining", "1 while the pool is draining for shutdown.", draining)

	counter("pdpad_runs_submitted_total", "Submissions received, including cache and dedup hits.", st.Submitted)
	counter("pdpad_runs_started_total", "Simulations started.", st.Started)
	counter("pdpad_cache_hits_total", "Submissions served from the result cache.", st.CacheHits)
	counter("pdpad_cache_misses_total", "Submissions that required a fresh simulation.", st.CacheMisses)
	counter("pdpad_dedup_hits_total", "Submissions that joined an identical in-flight run (singleflight).", st.DedupHits)

	const byState = "pdpad_runs_finished_total"
	fmt.Fprintf(w, "# HELP %s Runs finished, by terminal state.\n# TYPE %s counter\n", byState, byState)
	fmt.Fprintf(w, "%s{state=\"done\"} %d\n", byState, st.Done)
	fmt.Fprintf(w, "%s{state=\"failed\"} %d\n", byState, st.Failed)
	fmt.Fprintf(w, "%s{state=\"canceled\"} %d\n", byState, st.Canceled)

	const wall = "pdpad_run_wall_seconds"
	fmt.Fprintf(w, "# HELP %s Per-run simulation wall time.\n# TYPE %s histogram\n", wall, wall)
	for i, le := range st.Wall.BucketBounds() {
		var count uint64
		if i < len(st.Wall.Counts) {
			count = st.Wall.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", wall, formatFloat(le), count)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", wall, st.Wall.Count)
	fmt.Fprintf(w, "%s_sum %s\n", wall, formatFloat(st.Wall.Sum))
	fmt.Fprintf(w, "%s_count %d\n", wall, st.Wall.Count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
