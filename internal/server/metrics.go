package server

import "net/http"

// handleMetrics renders the pool's metric registry in the Prometheus text
// exposition format (version 0.0.4). Gauges and lifecycle counters read pool
// state at exposition time; histograms (run wall time, queue wait, decision
// events per run, per-job allocations) are observed by the pool as runs
// move. The registry is hand-rolled (internal/obs) to keep the daemon
// dependency-free.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.pool.Metrics().WritePrometheus(w)
}
