package server

// The unified v1 error envelope. Every non-2xx JSON response has the shape
//
//	{"error": {"code": "...", "message": "...", "retry_after_seconds": N}}
//
// where code is a stable machine-readable discriminator (the message is
// free-form and may change between releases) and retry_after_seconds is
// present exactly when the request is worth retrying after a pause — it
// mirrors the Retry-After header on the same response.

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Stable error codes, one per way a v1 request can fail.
const (
	// CodeInvalidRequest: the request was malformed — bad JSON, unknown
	// fields, an invalid spec, or bad query parameters (400).
	CodeInvalidRequest = "invalid_request"
	// CodeNotFound: no run or sweep with that ID (404).
	CodeNotFound = "not_found"
	// CodePayloadTooLarge: the request body exceeded the submission size
	// cap (413).
	CodePayloadTooLarge = "payload_too_large"
	// CodeOverloaded: the submission was shed by the admission controller's
	// backlog estimate; retry_after_seconds carries its estimate (429).
	CodeOverloaded = "overloaded"
	// CodeQueueFull: the hard queue bound rejected the submission (429).
	CodeQueueFull = "queue_full"
	// CodeDraining: the daemon is shutting down and not accepting work (503).
	CodeDraining = "draining"
	// CodeUnavailable: an injected fault or other transient server-side
	// condition failed the request (503).
	CodeUnavailable = "unavailable"
	// CodeInternal: a handler bug; the panic was recovered and counted (500).
	CodeInternal = "internal"
	// CodeIncompatibleRevision: a fleet node tried to register with a
	// coordinator speaking a different API revision (400).
	CodeIncompatibleRevision = "incompatible_revision"
	// CodeNoHealthyNodes: the coordinator has no healthy node to place the
	// run on — every node is cordoned, draining, unhealthy, or gone (503).
	CodeNoHealthyNodes = "no_healthy_nodes"
	// CodeNodeUnreachable: the node owning the requested resource did not
	// answer the coordinator's proxied request (502).
	CodeNodeUnreachable = "node_unreachable"
)

// ErrorBody is the envelope's payload.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds suggests a pause before retrying; 0 (omitted) means
	// the error is not retryable-after-a-wait.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// ErrorResponse is the wire form of every non-2xx JSON response.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// WriteError answers with the error envelope. It is exported so sibling
// packages serving v1-shaped endpoints (the fleet coordinator) emit the
// exact same envelope as this package.
func WriteError(w http.ResponseWriter, status int, code string, err error) {
	WriteJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: err.Error()}})
}

// WriteRetryError answers with the error envelope plus a retry hint, in
// both the Retry-After header and the body.
func WriteRetryError(w http.ResponseWriter, status int, code string, err error, retryAfterSeconds int) {
	if retryAfterSeconds < 1 {
		retryAfterSeconds = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	WriteJSON(w, status, ErrorResponse{Error: ErrorBody{
		Code: code, Message: err.Error(), RetryAfterSeconds: retryAfterSeconds,
	}})
}

// WriteJSON writes v as indented JSON with the given status — the response
// framing every v1 endpoint uses.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
