package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/internal/runqueue"
)

func newTestServer(t *testing.T, cfg runqueue.Config) (*httptest.Server, *runqueue.Pool) {
	t.Helper()
	pool := runqueue.New(cfg)
	ts := httptest.NewServer(New(pool))
	t.Cleanup(ts.Close)
	return ts, pool
}

func submitBody(mix string, seed int64, policy string) string {
	return fmt.Sprintf(`{"workload":{"mix":%q,"load":0.6,"window_s":60,"seed":%d},"options":{"policy":%q}}`,
		mix, seed, policy)
}

func postRun(t *testing.T, ts *httptest.Server, body string) (SubmitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	if resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return sr, resp.StatusCode
}

func getRun(t *testing.T, ts *httptest.Server, id string) RunView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET run %s: status %d", id, resp.StatusCode)
	}
	var v RunView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitRunState(t *testing.T, ts *httptest.Server, id, want string) RunView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		v := getRun(t, ts, id)
		if v.State == want {
			return v
		}
		if runqueue.State(v.State).Terminal() {
			t.Fatalf("run %s reached %s (err %q), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
	return RunView{}
}

// TestSubmitStatusResult drives a real simulation through the full HTTP
// surface: submit, poll to done, fetch the result, and hit the cache on an
// identical second submission.
func TestSubmitStatusResult(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{})
	sr, status := postRun(t, ts, submitBody("w1", 1, "equip"))
	if status != http.StatusAccepted {
		t.Fatalf("status %d, want 202", status)
	}
	v := waitRunState(t, ts, sr.ID, "done")
	if len(v.Result) == 0 {
		t.Fatal("done run has no result")
	}
	var result struct {
		Policy string `json:"policy"`
		Jobs   []any  `json:"jobs"`
	}
	if err := json.Unmarshal(v.Result, &result); err != nil {
		t.Fatalf("result not JSON: %v", err)
	}
	if len(result.Jobs) == 0 {
		t.Fatal("result has no jobs")
	}
	if v.WallSeconds <= 0 {
		t.Fatal("no wall time recorded")
	}

	// Identical spec: served from cache with 200, same run ID.
	sr2, status2 := postRun(t, ts, submitBody("w1", 1, "equip"))
	if status2 != http.StatusOK || !sr2.CacheHit || sr2.ID != sr.ID {
		t.Fatalf("second submit: status %d resp %+v, want cached %s", status2, sr2, sr.ID)
	}
}

// TestConcurrentSubmitsSingleflight: racing identical POSTs resolve to one
// run and one simulation.
func TestConcurrentSubmitsSingleflight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts, _ := newTestServer(t, runqueue.Config{
		Simulate: func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
			calls.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			ws, opts := spec.Facade()
			return pdpasim.RunContext(ctx, ws, opts)
		},
	})
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sr, status := postRun(t, ts, submitBody("w1", 5, "equip"))
			if status/100 != 2 {
				t.Errorf("status %d", status)
				return
			}
			ids[i] = sr.ID
		}(i)
	}
	wg.Wait()
	close(release)
	for _, id := range ids {
		if id != ids[0] {
			t.Fatalf("identical submits split: %v", ids)
		}
	}
	waitRunState(t, ts, ids[0], "done")
	if got := calls.Load(); got != 1 {
		t.Fatalf("simulated %d times, want 1", got)
	}
}

// TestDeleteCancelsRunningSimulation: DELETE aborts a heavy real simulation
// promptly, observable as a canceled terminal state.
func TestDeleteCancelsRunningSimulation(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{})
	body := `{"workload":{"mix":"w2","load":1.0,"window_s":14400,"seed":3},"options":{"policy":"pdpa"}}`
	sr, status := postRun(t, ts, body)
	if status != http.StatusAccepted {
		t.Fatalf("status %d", status)
	}
	waitRunState(t, ts, sr.ID, "running")

	start := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := getRun(t, ts, sr.ID)
		if v.State == "canceled" {
			if !strings.Contains(v.Error, "context canceled") {
				t.Fatalf("error %q does not mention cancellation", v.Error)
			}
			break
		}
		if runqueue.State(v.State).Terminal() {
			t.Fatalf("run ended %s, want canceled", v.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("run never canceled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("cancellation took %v", wall)
	}
}

// TestSSEStreamsLifecycle: the events endpoint streams queued/running/done
// transitions and terminates after the terminal event.
func TestSSEStreamsLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{})
	sr, _ := postRun(t, ts, submitBody("w1", 21, "equip"))
	resp, err := http.Get(ts.URL + "/v1/runs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var states []string
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev runqueue.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		states = append(states, string(ev.State))
	}
	if len(states) == 0 || states[len(states)-1] != "done" {
		t.Fatalf("streamed states %v, want trailing done", states)
	}
	// The stream must include the terminal transition exactly once.
	count := 0
	for _, s := range states {
		if s == "done" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("terminal state streamed %d times: %v", count, states)
	}
}

// TestTraceEndpoint: a done run serves its recorded decision trace with
// policy decisions and reasons; pools with tracing disabled and unknown runs
// 404.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{})
	sr, _ := postRun(t, ts, submitBody("w1", 61, "pdpa"))
	waitRunState(t, ts, sr.ID, "done")

	resp, err := http.Get(ts.URL + "/v1/runs/" + sr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var trace struct {
		Events []struct {
			Kind   string `json:"kind"`
			Reason string `json:"reason"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) == 0 {
		t.Fatal("trace has no events")
	}
	kinds := map[string]bool{}
	reasons := map[string]bool{}
	for _, e := range trace.Events {
		kinds[e.Kind] = true
		if e.Reason != "" {
			reasons[e.Reason] = true
		}
	}
	for _, want := range []string{"run_start", "policy_state", "admit", "realloc", "run_end"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events (kinds %v)", want, kinds)
		}
	}
	if len(reasons) == 0 {
		t.Error("no admission decision carries a reason")
	}

	// Unknown run: 404.
	resp2, err := http.Get(ts.URL + "/v1/runs/run-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run trace: status %d, want 404", resp2.StatusCode)
	}

	// Tracing disabled: 404 with an explanatory error.
	tsOff, _ := newTestServer(t, runqueue.Config{TraceLimit: -1})
	srOff, _ := postRun(t, tsOff, submitBody("w1", 61, "pdpa"))
	waitRunState(t, tsOff, srOff.ID, "done")
	resp3, err := http.Get(tsOff.URL + "/v1/runs/" + srOff.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("trace with tracing disabled: status %d, want 404", resp3.StatusCode)
	}
}

// TestAdmissionVisibleThroughAPI: with base=1/max=2 and a long warm-up, a
// second distinct spec stays queued (visible via /metrics queue depth) until
// the first is past warm-up.
func TestAdmissionVisibleThroughAPI(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	blocking := func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	const warmup = 500 * time.Millisecond
	ts, _ := newTestServer(t, runqueue.Config{
		BaseWorkers: 1, MaxWorkers: 2, Warmup: warmup, Simulate: blocking,
	})
	a, _ := postRun(t, ts, submitBody("w1", 1, "equip"))
	waitRunState(t, ts, a.ID, "running")
	b, _ := postRun(t, ts, submitBody("w1", 2, "equip"))

	time.Sleep(warmup / 5)
	if v := getRun(t, ts, b.ID); v.State != "queued" {
		t.Fatalf("second run %s during warm-up, want queued", v.State)
	}
	if depth := metricValue(t, ts, "pdpad_queue_depth"); depth != 1 {
		t.Fatalf("pdpad_queue_depth %v, want 1", depth)
	}
	waitRunState(t, ts, b.ID, "running")
	if inflight := metricValue(t, ts, "pdpad_inflight_runs"); inflight != 2 {
		t.Fatalf("pdpad_inflight_runs %v, want 2", inflight)
	}
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metricsText(t, ts), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestMetricsExposition: the required series exist in Prometheus text
// format and move with traffic.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{})
	sr, _ := postRun(t, ts, submitBody("w1", 31, "equip"))
	waitRunState(t, ts, sr.ID, "done")
	postRun(t, ts, submitBody("w1", 31, "equip")) // cache hit

	text := metricsText(t, ts)
	for _, want := range []string{
		"# TYPE pdpad_queue_depth gauge",
		"# TYPE pdpad_inflight_runs gauge",
		"# TYPE pdpad_cache_hits_total counter",
		"# TYPE pdpad_cache_misses_total counter",
		"# TYPE pdpad_run_wall_seconds histogram",
		`pdpad_run_wall_seconds_bucket{le="+Inf"} 1`,
		"pdpad_run_wall_seconds_count 1",
		`pdpad_runs_finished_total{state="done"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if metricValue(t, ts, "pdpad_cache_hits_total") != 1 {
		t.Error("cache hit not counted")
	}
	if metricValue(t, ts, "pdpad_cache_misses_total") != 1 {
		t.Error("cache miss not counted")
	}
}

// TestGracefulDrainCompletesInflight: draining the pool lets in-flight runs
// finish and flips /healthz to draining.
func TestGracefulDrainCompletesInflight(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	slow := func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		ws, opts := spec.Facade()
		return pdpasim.RunContext(ctx, ws, opts)
	}
	ts, pool := newTestServer(t, runqueue.Config{Simulate: slow})
	sr, _ := postRun(t, ts, submitBody("w1", 41, "equip"))
	waitRunState(t, ts, sr.ID, "running")

	drained := make(chan error, 1)
	go func() { drained <- pool.Drain(context.Background()) }()
	// Draining: health reports it and new submissions are refused.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Status string `json:"status"`
		}
		json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if health.Status == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, status := postRun(t, ts, submitBody("w1", 42, "equip")); status != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503", status)
	}
	once.Do(func() { close(release) })
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v := getRun(t, ts, sr.ID); v.State != "done" {
		t.Fatalf("in-flight run ended %s after graceful drain, want done", v.State)
	}
}

// TestValidationErrors: bad payloads are rejected through the shared
// validation path with 400s, and unknown runs 404.
func TestValidationErrors(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{})
	for _, body := range []string{
		`{not json`,
		`{"workload":{"mix":"w9"},"options":{"policy":"pdpa"}}`,
		`{"workload":{"mix":"w1"},"options":{"policy":"bogus"}}`,
		`{"workload":{"mix":"w1","load":-2},"options":{"policy":"pdpa"}}`,
		`{"workload":{"mix":"w1"},"options":{"policy":"pdpa"},"deadline_s":-1}`,
		`{"workload":{"mix":"w1"},"options":{"policy":"pdpa"},"surprise":true}`,
	} {
		if _, status := postRun(t, ts, body); status != http.StatusBadRequest {
			t.Errorf("payload %q: status %d, want 400", body, status)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/runs/run-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run status %d, want 404", resp.StatusCode)
	}
}

// TestListRuns: the listing endpoint returns known runs newest-first.
func TestListRuns(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{})
	a, _ := postRun(t, ts, submitBody("w1", 51, "equip"))
	waitRunState(t, ts, a.ID, "done")
	b, _ := postRun(t, ts, submitBody("w1", 52, "equip"))
	waitRunState(t, ts, b.ID, "done")

	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Runs []RunView `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 2 || list.Runs[0].ID != b.ID || list.Runs[1].ID != a.ID {
		t.Fatalf("listing wrong: %+v", list.Runs)
	}
}
