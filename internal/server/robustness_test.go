package server

// Robustness tests for the daemon's HTTP surface: malformed and oversized
// payloads, panic recovery, injected request faults, overload signalling,
// and a goroutine-leak check across server shutdown.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/internal/faults"
	"pdpasim/internal/leakcheck"
	"pdpasim/internal/runqueue"
)

// newFaultyServer is newTestServer with a fault injector installed.
func newFaultyServer(t *testing.T, cfg runqueue.Config, inj *faults.Injector) (*httptest.Server, *runqueue.Pool) {
	t.Helper()
	pool := runqueue.New(cfg)
	ts := httptest.NewServer(New(pool, WithFaults(inj)))
	t.Cleanup(ts.Close)
	return ts, pool
}

// failFastSim fails every simulation immediately — for tests that only need
// the HTTP layer, not results.
func failFastSim(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
	return nil, errors.New("stub: simulation disabled")
}

func postRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestMalformedRequestsRejected: broken submission payloads answer 400 with a
// JSON error — never a 500, never a panic.
func TestMalformedRequestsRejected(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{Simulate: failFastSim})
	cases := []struct {
		name, body string
	}{
		{"empty", ""},
		{"not json", "this is not json"},
		{"truncated", `{"workload":{"mix":"w1","loa`},
		{"unknown field", `{"workload":{"mix":"w1"},"options":{"policy":"pdpa"},"bogus":1}`},
		{"wrong type", `{"workload":"w1"}`},
		{"negative deadline", `{"workload":{"mix":"w1"},"options":{"policy":"pdpa"},"deadline_s":-1}`},
		{"invalid spec", `{"workload":{"mix":"w9"},"options":{"policy":"pdpa"}}`},
		{"array body", `[1,2,3]`},
	}
	for _, path := range []string{"/v1/runs", "/v1/sweeps"} {
		for _, tc := range cases {
			resp := postRaw(t, ts.URL+path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", path, tc.name, resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("%s %s: content type %q, want JSON error", path, tc.name, ct)
			}
		}
	}
}

// TestOversizedBodyRejected: payloads past the body cap answer 413.
func TestOversizedBodyRejected(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{Simulate: failFastSim})
	huge := `{"workload":{"mix":"` + strings.Repeat("x", maxRequestBody) + `"}}`
	for _, path := range []string{"/v1/runs", "/v1/sweeps"} {
		resp := postRaw(t, ts.URL+path, huge)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, resp.StatusCode)
		}
	}
}

// TestInjectedHTTPPanicRecovered: a panic inside request handling answers 500,
// increments the http recovered-panics series, and the daemon keeps serving.
func TestInjectedHTTPPanicRecovered(t *testing.T) {
	inj := faults.New(1, faults.Rule{Site: faults.SiteHTTPRequest, Kind: faults.KindPanic, Count: 1})
	ts, _ := newFaultyServer(t, runqueue.Config{Simulate: failFastSim}, inj)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500", resp.StatusCode)
	}
	// The daemon survived; the next request is served normally.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic: status %d, want 200", resp2.StatusCode)
	}
	if !strings.Contains(metricsText(t, ts), `pdpad_recovered_panics_total{where="http"} 1`) {
		t.Error("recovered panic not counted in the http series")
	}
}

// TestInjectedHTTPErrorAnswers503: an injected request fault surfaces as 503.
func TestInjectedHTTPErrorAnswers503(t *testing.T) {
	inj := faults.New(1, faults.Rule{Site: faults.SiteHTTPRequest, Kind: faults.KindError, Count: 1})
	ts, _ := newFaultyServer(t, runqueue.Config{Simulate: failFastSim}, inj)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

// TestOverloadRetryAfterHeader: a shed submission answers 429 with the pool's
// Retry-After estimate.
func TestOverloadRetryAfterHeader(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	blocking := func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
		select {
		case <-release:
			return nil, errors.New("stub")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts, _ := newTestServer(t, runqueue.Config{
		BaseWorkers: 1, MaxWorkers: 1, ShedDepth: 1, Simulate: blocking,
	})
	if _, status := postRun(t, ts, submitBody("w1", 1, "equip")); status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}
	// Wait until the first run is in flight so the next occupies the queue.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if metricValue(t, ts, "pdpad_inflight_runs") == 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, status := postRun(t, ts, submitBody("w1", 2, "equip")); status != http.StatusAccepted {
		t.Fatalf("second submit: status %d", status)
	}
	resp := postRaw(t, ts.URL+"/v1/runs", submitBody("w1", 3, "equip"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit: status %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive whole-second count", resp.Header.Get("Retry-After"))
	}
	if metricValue(t, ts, "pdpad_sheds_total") != 1 {
		t.Error("shed not counted")
	}
}

// TestQueueFullRetryAfterHeader: the hard queue limit also advises a retry.
func TestQueueFullRetryAfterHeader(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	blocking := func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
		select {
		case <-release:
			return nil, errors.New("stub")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts, pool := newTestServer(t, runqueue.Config{
		BaseWorkers: 1, MaxWorkers: 1, QueueLimit: 1, Simulate: blocking,
	})
	if _, status := postRun(t, ts, submitBody("w1", 1, "equip")); status != http.StatusAccepted {
		t.Fatalf("first submit: status %d", status)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().Inflight == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if _, status := postRun(t, ts, submitBody("w1", 2, "equip")); status != http.StatusAccepted {
		t.Fatalf("second submit: status %d", status)
	}
	resp := postRaw(t, ts.URL+"/v1/runs", submitBody("w1", 3, "equip"))
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("full-queue submit: status %d Retry-After %q, want 429 with header",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestServerShutdownNoLeaks: serving runs and an SSE stream, then draining
// the pool and closing the server, returns to the baseline goroutine count.
func TestServerShutdownNoLeaks(t *testing.T) {
	leakcheck.Check(t)
	pool := runqueue.New(runqueue.Config{})
	ts := httptest.NewServer(New(pool))

	sr, status := postRun(t, ts, submitBody("w1", 21, "equip"))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	// Stream the run's lifecycle to completion so an SSE handler goroutine
	// has lived and exited during the test.
	resp, err := http.Get(ts.URL + "/v1/runs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
	resp.Body.Close()
	waitRunState(t, ts, sr.ID, "done")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := pool.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
}

// FuzzSubmitDecode feeds arbitrary bytes to the submission endpoints: every
// response must be a well-formed HTTP status below 500 — malformed input can
// never panic the handler or surface as a server error.
func FuzzSubmitDecode(f *testing.F) {
	f.Add([]byte(submitBody("w1", 1, "equip")))
	f.Add([]byte(""))
	f.Add([]byte("null"))
	f.Add([]byte(`{"workload":{"mix":"w9"}}`))
	f.Add([]byte(`{"workload":{"mix":"w1","loa`))
	f.Add([]byte(`{"workload":{"mix":"w1","load":1e309},"options":{"policy":"pdpa"}}`))
	f.Add([]byte(`{"policies":["pdpa"],"mixes":["w1"],"seeds":[1,2]}`))
	f.Add([]byte(`[{"workload":{}}]`))
	f.Add([]byte("{\"workload\":{\"mix\":\"\x00\"}}"))

	pool := runqueue.New(runqueue.Config{
		QueueLimit: 8,
		Simulate: func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
			return nil, errors.New("stub: simulation disabled")
		},
	})
	srv := New(pool)
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, path := range []string{"/v1/runs", "/v1/sweeps"} {
			req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code >= 500 {
				t.Fatalf("POST %s with %q: status %d", path, body, rec.Code)
			}
		}
	})
}
