// Package server exposes the runqueue pool as a JSON-over-HTTP service —
// the pdpad daemon's API surface. Endpoints:
//
//	POST   /v1/runs             submit a WorkloadSpec+Options payload
//	GET    /v1/runs             list runs, newest first (limit=, cursor=, state=)
//	POST   /v1/runs/reconcile   bulk-report authoritative run states (fleet recovery)
//	GET    /v1/runs/{id}        status, and the full result once done
//	DELETE /v1/runs/{id}        cancel a queued or running simulation
//	GET    /v1/runs/{id}/events server-sent lifecycle events
//	GET    /v1/runs/{id}/trace  the run's recorded decision trace (JSON)
//	GET    /v1/version          build info, API revision, and role
//	POST   /v1/sweeps           submit a policy × mix × load × seed grid
//	GET    /v1/sweeps           list sweeps, newest first (limit=, cursor=, state=)
//	GET    /v1/sweeps/{id}      progress, and per-cell aggregates once done
//	DELETE /v1/sweeps/{id}      cancel a sweep's remaining members
//	GET    /healthz             liveness probe
//	GET    /metrics             Prometheus text exposition
//
// The list endpoints paginate with an opaque cursor: pass limit= (default
// 100, capped at 1000) and follow the response's next_cursor until it is
// absent; state= filters to one lifecycle state. Every non-2xx response
// carries the unified error envelope documented in errors.go.
//
// A sweep expands into member runs that share the pool's PDPA-style
// admission, result cache, and singleflight index with individually
// submitted runs; each member's result uses the same Outcome JSON schema as
// GET /v1/runs/{id}.
//
// Everything is stdlib net/http; the package has no third-party
// dependencies.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pdpasim/internal/faults"
	"pdpasim/internal/obs"
	"pdpasim/internal/runqueue"
)

// maxRequestBody bounds submission payloads; larger bodies get 413. A full
// sweep grid serializes well under a megabyte.
const maxRequestBody = 1 << 20

// Server routes HTTP traffic to a runqueue.Pool. Create with New; it
// implements http.Handler.
type Server struct {
	pool    *runqueue.Pool
	mux     *http.ServeMux
	started time.Time
	role    string

	faults    *faults.Injector
	recovered *obs.Counter
}

// Option customizes a Server.
type Option func(*Server)

// WithFaults installs a fault injector evaluated at the top of every request
// — chaos-test tooling. The default nil injector is a no-op.
func WithFaults(inj *faults.Injector) Option {
	return func(s *Server) { s.faults = inj }
}

// New returns a server backed by pool.
func New(pool *runqueue.Pool, opts ...Option) *Server {
	s := &Server{pool: pool, mux: http.NewServeMux(), started: time.Now(), role: RoleStandalone}
	for _, o := range opts {
		o(s)
	}
	// The "http" series of the family whose "worker" series the pool owns.
	s.recovered = pool.Metrics().LabeledCounter("pdpad_recovered_panics_total",
		"Panics recovered without taking the daemon down, by origin.", "where", "http")
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("POST /v1/runs/reconcile", s.handleReconcile)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleListSweeps)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancelSweep)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler. Every request passes through panic
// recovery — a handler bug answers 500 and increments the recovered-panics
// counter instead of killing the daemon — and, when a fault injector is
// installed, an injection point that can fail the request with 503.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel, compared by identity
			panic(rec) // deliberate connection abort, not a bug
		}
		s.recovered.Inc()
		// Best-effort: if the handler already wrote a header this fails
		// silently, but the connection still closes with a broken response.
		WriteError(w, http.StatusInternalServerError, CodeInternal, fmt.Errorf("internal error: %v", rec))
	}()
	if err := s.faults.Hit(r.Context(), faults.SiteHTTPRequest); err != nil {
		WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, fmt.Errorf("injected fault: %w", err))
		return
	}
	s.mux.ServeHTTP(w, r)
}

// submitError maps a pool submission error to an HTTP response. Overload
// sheds carry the pool's backlog estimate as a retry hint (header and
// envelope body); plain queue-full rejections suggest retrying in a second.
func (s *Server) submitError(w http.ResponseWriter, err error) {
	var overload *runqueue.OverloadError
	switch {
	case errors.As(err, &overload): // before ErrQueueFull: OverloadError matches both
		WriteRetryError(w, http.StatusTooManyRequests, CodeOverloaded, err,
			int(overload.RetryAfter/time.Second))
	case errors.Is(err, runqueue.ErrDraining):
		WriteError(w, http.StatusServiceUnavailable, CodeDraining, err)
	case errors.Is(err, runqueue.ErrQueueFull):
		WriteRetryError(w, http.StatusTooManyRequests, CodeQueueFull, err, 1)
	default:
		WriteError(w, http.StatusBadRequest, CodeInvalidRequest, err)
	}
}

// decodeBody decodes a JSON request body into v, capped at maxRequestBody.
// The error it writes distinguishes oversized payloads (413) from malformed
// ones (400).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			WriteError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		WriteError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// SubmitRequest is the POST /v1/runs payload: the spec plus an optional
// per-run deadline in seconds (queue wait included).
type SubmitRequest struct {
	Workload runqueue.WorkloadSpec `json:"workload"`
	Options  runqueue.RunOptions   `json:"options"`
	// DeadlineS bounds the run's total latency in seconds; 0 uses the
	// pool's default.
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// SubmitResponse reports how the submission was resolved.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// CacheHit: an identical spec had already completed; fetch the result
	// immediately from GET /v1/runs/{id}.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Deduped: an identical spec was already queued or running; this
	// submission joined it.
	Deduped bool `json:"deduped,omitempty"`
}

// RunView is the wire form of a run's status.
type RunView struct {
	ID          string          `json:"id"`
	State       string          `json:"state"`
	Error       string          `json:"error,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	WallSeconds float64         `json:"wall_seconds,omitempty"`
	CacheKey    string          `json:"cache_key"`
	Spec        runqueue.Spec   `json:"spec"`
	Result      json.RawMessage `json:"result,omitempty"`
}

func viewOf(snap runqueue.Snapshot, includeResult bool) RunView {
	v := RunView{
		ID:          snap.ID,
		State:       string(snap.State),
		SubmittedAt: snap.Submitted,
		CacheKey:    snap.Key,
		Spec:        snap.Spec,
	}
	if snap.Err != nil {
		v.Error = snap.Err.Error()
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		v.StartedAt = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		v.FinishedAt = &t
		if !snap.Started.IsZero() {
			v.WallSeconds = snap.Finished.Sub(snap.Started).Seconds()
		}
	}
	if includeResult {
		v.Result = snap.ResultJSON
	}
	return v
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.DeadlineS < 0 {
		WriteError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("negative deadline_s %v", req.DeadlineS))
		return
	}
	spec := runqueue.Spec{Workload: req.Workload, Options: req.Options}
	deadline := time.Duration(req.DeadlineS * float64(time.Second))
	res, err := s.pool.Submit(spec, deadline)
	if err != nil {
		s.submitError(w, err)
		return
	}
	status := http.StatusAccepted
	if res.CacheHit {
		status = http.StatusOK
	}
	WriteJSON(w, status, SubmitResponse{
		ID:       res.ID,
		State:    string(res.State),
		CacheHit: res.CacheHit,
		Deduped:  res.Deduped,
	})
}

// RunListResponse is one page of GET /v1/runs, newest first. NextCursor,
// when present, fetches the next page via ?cursor=; its absence marks the
// last page.
type RunListResponse struct {
	Runs       []RunView `json:"runs"`
	NextCursor string    `json:"next_cursor,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	p, err := parsePageParams(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	page, next := Paginate(s.pool.Runs(), p,
		func(snap runqueue.Snapshot) string { return snap.ID },
		func(snap runqueue.Snapshot) bool { return p.State == "" || string(snap.State) == p.State })
	views := make([]RunView, len(page))
	for i, snap := range page {
		views[i] = viewOf(snap, false)
	}
	WriteJSON(w, http.StatusOK, RunListResponse{Runs: views, NextCursor: next})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.pool.Get(r.PathValue("id"))
	if err != nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	WriteJSON(w, http.StatusOK, viewOf(snap, true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	snap, err := s.pool.Cancel(r.PathValue("id"))
	if err != nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	WriteJSON(w, http.StatusOK, viewOf(snap, false))
}

// handleEvents streams the run's lifecycle as server-sent events: one
// `event: state` message per transition, ending after the terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, http.StatusInternalServerError, CodeInternal, errors.New("streaming unsupported"))
		return
	}
	id := r.PathValue("id")
	events, unsub, err := s.pool.Subscribe(id)
	if err != nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	defer unsub()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	emit := func(ev runqueue.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", data)
		flusher.Flush()
		return !ev.State.Terminal()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				// Channel closed: make sure the client saw the terminal
				// state even if an intermediate send was dropped.
				if snap, err := s.pool.Get(id); err == nil && snap.State.Terminal() {
					msg := ""
					if snap.Err != nil {
						msg = snap.Err.Error()
					}
					emit(runqueue.Event{RunID: id, State: snap.State, At: snap.Finished, Message: msg})
				}
				return
			}
			if !emit(ev) {
				return
			}
		}
	}
}

// handleTrace serves the run's recorded decision trace: the ordered event
// stream explaining every scheduling decision ({"events": [...], "dropped":
// n}, the pdpasim.DecisionTrace JSON schema). Available once the run is
// done, unless the pool was configured with tracing disabled.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	snap, err := s.pool.Get(r.PathValue("id"))
	if err != nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	if len(snap.TraceJSON) == 0 {
		WriteError(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("run %s has no decision trace (state %s; tracing may be disabled)", snap.ID, snap.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(snap.TraceJSON)
}

// ReconcileRequest is the POST /v1/runs/reconcile payload: the run IDs a
// restarted coordinator believes this node owns and needs authoritative
// states for.
type ReconcileRequest struct {
	IDs []string `json:"ids"`
}

// ReconcileResponse answers a reconcile probe: a full view (result
// included) for every asked-about run this pool has a record of, and the
// IDs it knows nothing about — which the coordinator requeues elsewhere.
type ReconcileResponse struct {
	Runs    []RunView `json:"runs,omitempty"`
	Missing []string  `json:"missing,omitempty"`
}

// handleReconcile bulk-reports run states for a recovering coordinator.
// The node is the authority: a run it finished while the coordinator was
// down comes back terminal with its exact result bytes, which is what
// keeps resumed fleet sweeps byte-identical.
func (s *Server) handleReconcile(w http.ResponseWriter, r *http.Request) {
	var req ReconcileRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var resp ReconcileResponse
	for _, id := range req.IDs {
		snap, err := s.pool.Get(id)
		if err != nil {
			resp.Missing = append(resp.Missing, id)
			continue
		}
		resp.Runs = append(resp.Runs, viewOf(snap, true))
	}
	WriteJSON(w, http.StatusOK, resp)
}

// SweepSubmitRequest is the POST /v1/sweeps payload: the grid plus an
// optional per-member deadline in seconds.
type SweepSubmitRequest struct {
	runqueue.SweepSpec
	// DeadlineS bounds each member run's total latency in seconds; 0 uses
	// the pool's default.
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// SweepSubmitResponse reports how the sweep was resolved.
type SweepSubmitResponse struct {
	ID     string   `json:"id"`
	RunIDs []string `json:"run_ids"`
	// CacheHits and Deduped count members served from the result cache or
	// joined to in-flight identical runs instead of re-simulated.
	CacheHits int `json:"cache_hits,omitempty"`
	Deduped   int `json:"deduped,omitempty"`
}

// SweepView is the wire form of a sweep's status.
type SweepView struct {
	ID          string             `json:"id"`
	State       string             `json:"state"`
	Done        int                `json:"done"`
	Total       int                `json:"total"`
	SubmittedAt time.Time          `json:"submitted_at"`
	Spec        runqueue.SweepSpec `json:"spec"`
	RunIDs      []string           `json:"run_ids,omitempty"`
	Errors      []string           `json:"errors,omitempty"`
	// Cells holds per-cell aggregates (mean/stddev/95% CI over seed
	// replicates) once every member is done.
	Cells []runqueue.SweepCell `json:"cells,omitempty"`
}

func sweepViewOf(st runqueue.SweepStatus, includeDetail bool) SweepView {
	v := SweepView{
		ID:          st.ID,
		State:       string(st.State),
		Done:        st.Done,
		Total:       st.Total,
		SubmittedAt: st.Submitted,
		Spec:        st.Spec,
		Errors:      st.Errors,
	}
	if includeDetail {
		v.RunIDs = st.RunIDs
		v.Cells = st.Cells
	}
	return v
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepSubmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.DeadlineS < 0 {
		WriteError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("negative deadline_s %v", req.DeadlineS))
		return
	}
	res, err := s.pool.SubmitSweep(req.SweepSpec, time.Duration(req.DeadlineS*float64(time.Second)))
	if err != nil {
		s.submitError(w, err)
		return
	}
	WriteJSON(w, http.StatusAccepted, SweepSubmitResponse{
		ID:        res.ID,
		RunIDs:    res.RunIDs,
		CacheHits: res.CacheHits,
		Deduped:   res.Deduped,
	})
}

// SweepListResponse is one page of GET /v1/sweeps, newest first.
type SweepListResponse struct {
	Sweeps     []SweepView `json:"sweeps"`
	NextCursor string      `json:"next_cursor,omitempty"`
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	p, err := parsePageParams(r)
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	page, next := Paginate(s.pool.Sweeps(), p,
		func(st runqueue.SweepStatus) string { return st.ID },
		func(st runqueue.SweepStatus) bool { return p.State == "" || string(st.State) == p.State })
	views := make([]SweepView, len(page))
	for i, st := range page {
		views[i] = sweepViewOf(st, false)
	}
	WriteJSON(w, http.StatusOK, SweepListResponse{Sweeps: views, NextCursor: next})
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	st, err := s.pool.GetSweep(r.PathValue("id"))
	if err != nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	WriteJSON(w, http.StatusOK, sweepViewOf(st, true))
}

func (s *Server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	st, err := s.pool.CancelSweep(r.PathValue("id"))
	if err != nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	WriteJSON(w, http.StatusOK, sweepViewOf(st, false))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	status := "ok"
	if st.Draining {
		status = "draining"
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"uptime_s": time.Since(s.started).Seconds(),
		"queue":    st.QueueDepth,
		"inflight": st.Inflight,
	})
}
