package server

// Tests for the v1 surface introduced with the API cleanup: the unified
// error envelope (one golden case per status path) and cursor pagination on
// the list endpoints.

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/internal/faults"
	"pdpasim/internal/runqueue"
)

// decodeEnvelope strictly decodes the error envelope — unknown or missing
// fields fail the test, so the wire shape cannot drift silently.
func decodeEnvelope(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response content type %q, want application/json", ct)
	}
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	var env ErrorResponse
	if err := dec.Decode(&env); err != nil {
		t.Fatalf("error response is not the envelope: %v", err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope incomplete: %+v", env.Error)
	}
	return env.Error
}

// get is a test GET returning the raw response.
func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestErrorEnvelopeGolden: the 404 body, byte for byte — the reference
// rendering of the envelope.
func TestErrorEnvelopeGolden(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{Simulate: failFastSim})
	resp := get(t, ts.URL+"/v1/runs/run-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var body strings.Builder
	if _, err := fmt.Fprint(&body, mustReadAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "error": {
    "code": "not_found",
    "message": "runqueue: no such run"
  }
}
`
	if body.String() != golden {
		t.Fatalf("404 body:\n%s\nwant:\n%s", body.String(), golden)
	}
}

func mustReadAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestErrorEnvelopeStatusPaths drives every error status the v1 surface can
// produce and checks each answers the envelope with its stable code.
func TestErrorEnvelopeStatusPaths(t *testing.T) {
	t.Run("400 invalid_request", func(t *testing.T) {
		ts, _ := newTestServer(t, runqueue.Config{Simulate: failFastSim})
		resp := postRaw(t, ts.URL+"/v1/runs", "{not json")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if env := decodeEnvelope(t, resp); env.Code != CodeInvalidRequest || env.RetryAfterSeconds != 0 {
			t.Fatalf("envelope %+v, want code %s without retry hint", env, CodeInvalidRequest)
		}
	})

	t.Run("404 not_found", func(t *testing.T) {
		ts, _ := newTestServer(t, runqueue.Config{Simulate: failFastSim})
		for _, path := range []string{"/v1/runs/run-999999", "/v1/sweeps/sweep-999999",
			"/v1/runs/run-999999/trace", "/v1/runs/run-999999/events"} {
			resp := get(t, ts.URL+path)
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
			}
			if env := decodeEnvelope(t, resp); env.Code != CodeNotFound {
				t.Fatalf("%s: code %q, want %s", path, env.Code, CodeNotFound)
			}
		}
	})

	t.Run("413 payload_too_large", func(t *testing.T) {
		ts, _ := newTestServer(t, runqueue.Config{Simulate: failFastSim})
		huge := `{"workload":{"mix":"` + strings.Repeat("x", maxRequestBody) + `"}}`
		resp := postRaw(t, ts.URL+"/v1/runs", huge)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", resp.StatusCode)
		}
		if env := decodeEnvelope(t, resp); env.Code != CodePayloadTooLarge {
			t.Fatalf("code %q, want %s", env.Code, CodePayloadTooLarge)
		}
	})

	t.Run("429 overloaded", func(t *testing.T) {
		release := make(chan struct{})
		defer close(release)
		blocking := func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
			select {
			case <-release:
				return nil, errors.New("stub")
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ts, pool := newTestServer(t, runqueue.Config{
			BaseWorkers: 1, MaxWorkers: 1, ShedDepth: 1, Simulate: blocking,
		})
		postRun(t, ts, submitBody("w1", 1, "equip"))
		deadline := time.Now().Add(5 * time.Second)
		for pool.Stats().Inflight == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		postRun(t, ts, submitBody("w1", 2, "equip")) // occupies the queue
		resp := postRaw(t, ts.URL+"/v1/runs", submitBody("w1", 3, "equip"))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		env := decodeEnvelope(t, resp)
		if env.Code != CodeOverloaded || env.RetryAfterSeconds < 1 {
			t.Fatalf("envelope %+v, want code %s with a retry hint", env, CodeOverloaded)
		}
		if header, _ := strconv.Atoi(resp.Header.Get("Retry-After")); header != env.RetryAfterSeconds {
			t.Fatalf("Retry-After header %q disagrees with body %d",
				resp.Header.Get("Retry-After"), env.RetryAfterSeconds)
		}
	})

	t.Run("429 queue_full", func(t *testing.T) {
		release := make(chan struct{})
		defer close(release)
		blocking := func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
			select {
			case <-release:
				return nil, errors.New("stub")
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ts, pool := newTestServer(t, runqueue.Config{
			BaseWorkers: 1, MaxWorkers: 1, QueueLimit: 1, Simulate: blocking,
		})
		postRun(t, ts, submitBody("w1", 1, "equip"))
		deadline := time.Now().Add(5 * time.Second)
		for pool.Stats().Inflight == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		postRun(t, ts, submitBody("w1", 2, "equip"))
		resp := postRaw(t, ts.URL+"/v1/runs", submitBody("w1", 3, "equip"))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		env := decodeEnvelope(t, resp)
		if env.Code != CodeQueueFull || env.RetryAfterSeconds != 1 {
			t.Fatalf("envelope %+v, want code %s with retry_after_seconds 1", env, CodeQueueFull)
		}
	})

	t.Run("503 draining", func(t *testing.T) {
		ts, pool := newTestServer(t, runqueue.Config{Simulate: failFastSim})
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := pool.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		resp := postRaw(t, ts.URL+"/v1/runs", submitBody("w1", 1, "equip"))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		if env := decodeEnvelope(t, resp); env.Code != CodeDraining {
			t.Fatalf("code %q, want %s", env.Code, CodeDraining)
		}
	})

	t.Run("503 unavailable", func(t *testing.T) {
		inj := faults.New(1, faults.Rule{Site: faults.SiteHTTPRequest, Kind: faults.KindError, Count: 1})
		ts, _ := newFaultyServer(t, runqueue.Config{Simulate: failFastSim}, inj)
		resp := get(t, ts.URL+"/healthz")
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		if env := decodeEnvelope(t, resp); env.Code != CodeUnavailable {
			t.Fatalf("code %q, want %s", env.Code, CodeUnavailable)
		}
	})

	t.Run("500 internal", func(t *testing.T) {
		inj := faults.New(1, faults.Rule{Site: faults.SiteHTTPRequest, Kind: faults.KindPanic, Count: 1})
		ts, _ := newFaultyServer(t, runqueue.Config{Simulate: failFastSim}, inj)
		resp := get(t, ts.URL+"/healthz")
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
		if env := decodeEnvelope(t, resp); env.Code != CodeInternal {
			t.Fatalf("code %q, want %s", env.Code, CodeInternal)
		}
	})
}

// listRuns fetches one page of GET /v1/runs with the given query string.
func listRuns(t *testing.T, ts *httptest.Server, query string) RunListResponse {
	t.Helper()
	resp := get(t, ts.URL+"/v1/runs"+query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/runs%s: status %d", query, resp.StatusCode)
	}
	var page RunListResponse
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

// TestListRunsPagination: walking limit-2 pages visits every run newest
// first, exactly once, and the final page has no cursor.
func TestListRunsPagination(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{Simulate: failFastSim})
	var ids []string
	for seed := int64(1); seed <= 5; seed++ {
		sr, status := postRun(t, ts, submitBody("w1", seed, "equip"))
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", seed, status)
		}
		waitRunState(t, ts, sr.ID, "failed") // failFastSim fails instantly
		ids = append(ids, sr.ID)
	}

	var walked []string
	query := "?limit=2"
	for pages := 0; ; pages++ {
		if pages > 3 {
			t.Fatal("pagination never terminated")
		}
		page := listRuns(t, ts, query)
		if len(page.Runs) > 2 {
			t.Fatalf("page of %d runs, want <= limit 2", len(page.Runs))
		}
		for _, v := range page.Runs {
			walked = append(walked, v.ID)
		}
		if page.NextCursor == "" {
			break
		}
		query = "?limit=2&cursor=" + page.NextCursor
	}
	if len(walked) != len(ids) {
		t.Fatalf("walked %d runs %v, want all %d", len(walked), walked, len(ids))
	}
	for i, id := range walked {
		if want := ids[len(ids)-1-i]; id != want {
			t.Fatalf("position %d: got %s, want %s (newest first, no dupes)", i, id, want)
		}
	}

	// A huge limit returns everything in one cursorless page.
	if page := listRuns(t, ts, "?limit=1000"); len(page.Runs) != 5 || page.NextCursor != "" {
		t.Fatalf("limit=1000: %d runs, cursor %q", len(page.Runs), page.NextCursor)
	}
}

// TestListRunsStateFilter: state= filters the page and composes with the
// cursor walk.
func TestListRunsStateFilter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	blocking := func(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, errors.New("stub")
	}
	ts, pool := newTestServer(t, runqueue.Config{BaseWorkers: 4, Simulate: blocking})
	running, _ := postRun(t, ts, submitBody("w1", 100, "equip"))
	waitRunState(t, ts, running.ID, "running")
	// Cancel two queued runs so the pool holds a mix of states.
	a, _ := postRun(t, ts, submitBody("w1", 101, "equip"))
	b, _ := postRun(t, ts, submitBody("w1", 102, "equip"))
	for _, id := range []string{a.ID, b.ID} {
		if _, err := pool.Cancel(id); err != nil {
			t.Fatal(err)
		}
		waitRunState(t, ts, id, "canceled")
	}

	page := listRuns(t, ts, "?state=canceled")
	if len(page.Runs) != 2 {
		t.Fatalf("state=canceled returned %d runs, want 2", len(page.Runs))
	}
	for _, v := range page.Runs {
		if v.State != "canceled" {
			t.Fatalf("state filter leaked a %s run", v.State)
		}
	}
	if page := listRuns(t, ts, "?state=running"); len(page.Runs) != 1 || page.Runs[0].ID != running.ID {
		t.Fatalf("state=running returned %+v, want just %s", page.Runs, running.ID)
	}

	// Filter composes with the cursor: limit=1 pages through the canceled
	// pair without skipping across the interleaved running run.
	first := listRuns(t, ts, "?state=canceled&limit=1")
	if len(first.Runs) != 1 || first.NextCursor == "" {
		t.Fatalf("first filtered page %+v", first)
	}
	second := listRuns(t, ts, "?state=canceled&limit=1&cursor="+first.NextCursor)
	if len(second.Runs) != 1 || second.Runs[0].ID == first.Runs[0].ID {
		t.Fatalf("second filtered page %+v after %+v", second.Runs, first.Runs)
	}
}

// TestListBadQueryParams: invalid limit, cursor, or state answer 400 with
// the invalid_request code.
func TestListBadQueryParams(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{Simulate: failFastSim})
	for _, query := range []string{
		"?limit=0", "?limit=-1", "?limit=abc",
		"?cursor=%21%21not-base64%21%21", "?cursor=" + cursorOf("v2:run-000001"),
		"?state=finished",
	} {
		for _, path := range []string{"/v1/runs", "/v1/sweeps"} {
			resp := get(t, ts.URL+path+query)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("GET %s%s: status %d, want 400", path, query, resp.StatusCode)
				continue
			}
			if env := decodeEnvelope(t, resp); env.Code != CodeInvalidRequest {
				t.Errorf("GET %s%s: code %q, want %s", path, query, env.Code, CodeInvalidRequest)
			}
		}
	}
}

// cursorOf builds a cursor with an arbitrary payload (for version checks).
func cursorOf(payload string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(payload))
}

// TestListSweepsPagination: the sweeps listing pages the same way.
func TestListSweepsPagination(t *testing.T) {
	ts, _ := newTestServer(t, runqueue.Config{Simulate: failFastSim})
	sweepBody := `{"policies":["equip"],"mixes":["w1"],"seeds":[%d]}`
	var ids []string
	for i := 1; i <= 3; i++ {
		resp := postRaw(t, ts.URL+"/v1/sweeps", fmt.Sprintf(sweepBody, i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("sweep submit %d: status %d", i, resp.StatusCode)
		}
		var sr SweepSubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sr.ID)
	}

	var walked []string
	query := "?limit=2"
	for pages := 0; ; pages++ {
		if pages > 2 {
			t.Fatal("sweep pagination never terminated")
		}
		resp := get(t, ts.URL+"/v1/sweeps"+query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/sweeps%s: status %d", query, resp.StatusCode)
		}
		var page SweepListResponse
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		for _, v := range page.Sweeps {
			walked = append(walked, v.ID)
		}
		if page.NextCursor == "" {
			break
		}
		query = "?limit=2&cursor=" + page.NextCursor
	}
	if len(walked) != 3 {
		t.Fatalf("walked %d sweeps %v, want 3", len(walked), walked)
	}
	for i, id := range walked {
		if want := ids[len(ids)-1-i]; id != want {
			t.Fatalf("position %d: got %s, want %s", i, id, want)
		}
	}
}
