package server

// Pagination for the list endpoints. Both collections are ordered newest
// first by zero-padded sequence IDs, so "everything strictly older than the
// last ID the client saw" is a stable page boundary even while new work
// arrives: new runs get larger IDs and never shift an old cursor's page.
// The cursor is opaque to clients — base64url over a versioned payload —
// so the ordering scheme can change without breaking them.
//
// The exported half of this file is the v1 pagination convention itself:
// sibling packages serving v1-shaped collections (the fleet coordinator's
// /v1/nodes and proxied lists) parse and paginate with the same helpers so
// every list endpoint behaves identically.

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"pdpasim/internal/runqueue"
)

const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
	cursorVersion    = "v1:"
)

// PageParams are the parsed list-endpoint query parameters (limit=, cursor=,
// state=).
type PageParams struct {
	Limit int
	// AfterID is the decoded cursor: only items with ID strictly less than
	// it (strictly older, in newest-first order) belong to the page. Empty
	// means start from the newest.
	AfterID string
	// State filters to items in that lifecycle state; empty means all.
	State string
}

// ParsePageParams reads limit, cursor, and state from the query string.
// validStates is the endpoint's state vocabulary; a state= value outside it
// is an error naming the alternatives.
func ParsePageParams(r *http.Request, validStates ...string) (PageParams, error) {
	p := PageParams{Limit: defaultPageLimit}
	q := r.URL.Query()
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return p, fmt.Errorf("limit %q: want a positive integer", raw)
		}
		if n > maxPageLimit {
			n = maxPageLimit
		}
		p.Limit = n
	}
	if raw := q.Get("cursor"); raw != "" {
		id, err := decodeCursor(raw)
		if err != nil {
			return p, err
		}
		p.AfterID = id
	}
	if raw := q.Get("state"); raw != "" {
		ok := false
		for _, s := range validStates {
			if raw == s {
				ok = true
				break
			}
		}
		if !ok {
			return p, fmt.Errorf("state %q: want one of %s", raw, strings.Join(validStates, ", "))
		}
		p.State = raw
	}
	return p, nil
}

// runStates is the lifecycle vocabulary shared by the run and sweep lists.
var runStates = []string{
	string(runqueue.Queued), string(runqueue.Running),
	string(runqueue.Done), string(runqueue.Failed), string(runqueue.Canceled),
}

// parsePageParams parses with the run/sweep state vocabulary.
func parsePageParams(r *http.Request) (PageParams, error) {
	return ParsePageParams(r, runStates...)
}

// EncodeCursor renders the opaque next_cursor for the page ending at lastID.
func EncodeCursor(lastID string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorVersion + lastID))
}

func decodeCursor(raw string) (string, error) {
	b, err := base64.RawURLEncoding.DecodeString(raw)
	if err != nil {
		return "", fmt.Errorf("cursor %q: not a valid cursor", raw)
	}
	s := string(b)
	if !strings.HasPrefix(s, cursorVersion) {
		return "", fmt.Errorf("cursor %q: unknown cursor version", raw)
	}
	return strings.TrimPrefix(s, cursorVersion), nil
}

// Paginate selects the page from a newest-first item list. keep reports
// whether an item passes the state filter; id yields its ordering key.
// It returns the page's items and the next cursor ("" on the last page).
func Paginate[T any](items []T, p PageParams, id func(T) string, keep func(T) bool) ([]T, string) {
	page := make([]T, 0, min(p.Limit, len(items)))
	next := ""
	for _, it := range items {
		if p.AfterID != "" && id(it) >= p.AfterID {
			continue // at or before the cursor position
		}
		if !keep(it) {
			continue
		}
		if len(page) == p.Limit {
			// A further match exists, so this page is not the last one; the
			// cursor points at the page's final item and the next page
			// resumes right after it, filters included.
			next = EncodeCursor(id(page[len(page)-1]))
			break
		}
		page = append(page, it)
	}
	return page, next
}
