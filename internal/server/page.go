package server

// Pagination for the list endpoints. Both collections are ordered newest
// first by zero-padded sequence IDs, so "everything strictly older than the
// last ID the client saw" is a stable page boundary even while new work
// arrives: new runs get larger IDs and never shift an old cursor's page.
// The cursor is opaque to clients — base64url over a versioned payload —
// so the ordering scheme can change without breaking them.

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"pdpasim/internal/runqueue"
)

const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
	cursorVersion    = "v1:"
)

// pageParams are the parsed list-endpoint query parameters.
type pageParams struct {
	limit int
	// afterID is the decoded cursor: only items with ID strictly less than
	// it (strictly older, in newest-first order) belong to the page. Empty
	// means start from the newest.
	afterID string
	// state filters to items in that lifecycle state; empty means all.
	state runqueue.State
}

// parsePageParams reads limit, cursor, and state from the query string.
func parsePageParams(r *http.Request) (pageParams, error) {
	p := pageParams{limit: defaultPageLimit}
	q := r.URL.Query()
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return p, fmt.Errorf("limit %q: want a positive integer", raw)
		}
		if n > maxPageLimit {
			n = maxPageLimit
		}
		p.limit = n
	}
	if raw := q.Get("cursor"); raw != "" {
		id, err := decodeCursor(raw)
		if err != nil {
			return p, err
		}
		p.afterID = id
	}
	if raw := q.Get("state"); raw != "" {
		switch s := runqueue.State(raw); s {
		case runqueue.Queued, runqueue.Running, runqueue.Done, runqueue.Failed, runqueue.Canceled:
			p.state = s
		default:
			return p, fmt.Errorf("state %q: want one of queued, running, done, failed, canceled", raw)
		}
	}
	return p, nil
}

func encodeCursor(lastID string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorVersion + lastID))
}

func decodeCursor(raw string) (string, error) {
	b, err := base64.RawURLEncoding.DecodeString(raw)
	if err != nil {
		return "", fmt.Errorf("cursor %q: not a valid cursor", raw)
	}
	s := string(b)
	if !strings.HasPrefix(s, cursorVersion) {
		return "", fmt.Errorf("cursor %q: unknown cursor version", raw)
	}
	return strings.TrimPrefix(s, cursorVersion), nil
}

// paginate selects the page from a newest-first item list. keep reports
// whether an item passes the state filter; id yields its ordering key.
// It returns the page's indices and the next cursor ("" on the last page).
func paginate[T any](items []T, p pageParams, id func(T) string, keep func(T) bool) ([]T, string) {
	page := make([]T, 0, min(p.limit, len(items)))
	next := ""
	for _, it := range items {
		if p.afterID != "" && id(it) >= p.afterID {
			continue // at or before the cursor position
		}
		if !keep(it) {
			continue
		}
		if len(page) == p.limit {
			// A further match exists, so this page is not the last one; the
			// cursor points at the page's final item and the next page
			// resumes right after it, filters included.
			next = encodeCursor(id(page[len(page)-1]))
			break
		}
		page = append(page, it)
	}
	return page, next
}
