package pdpasim

// Runner-reuse regression tests. A Runner recycles every internal arena —
// engine heap, trace recorder, machine, queuing slabs, per-job runtime
// state, manager free lists — across runs, and the contract is that the
// recycling is invisible: every run's serialized outcome AND its decision
// trace must be byte-for-byte what a fresh environment produces for the
// same spec. These tests deliberately interleave policies, seeds, machine
// sizes, and trace retention on one Runner so each run starts from the
// dirtiest possible arena state.

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// runBytes executes one run and returns the serialized outcome JSON and
// decision-trace JSON.
func runBytes(t *testing.T, run func() (*Outcome, error)) (outJSON, traceJSON []byte) {
	t.Helper()
	out, err := run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	outJSON = buf.Bytes()
	if dt := out.DecisionTrace(); dt != nil {
		var tbuf bytes.Buffer
		if err := dt.WriteJSON(&tbuf); err != nil {
			t.Fatal(err)
		}
		traceJSON = tbuf.Bytes()
	}
	return outJSON, traceJSON
}

// TestRunnerByteIdenticalToFresh drives one Runner through a grid of
// policies × mixes × seeds and checks every run against a fresh
// RunContext of the same spec.
func TestRunnerByteIdenticalToFresh(t *testing.T) {
	specs := []WorkloadSpec{
		{Mix: "w1", Load: 1.0, NCPU: 32, Window: 60 * time.Second},
		{Mix: "w3", Load: 0.8, NCPU: 32, Window: 60 * time.Second},
	}
	policies := []Policy{PDPA, IRIX, Equipartition, EqualEfficiency}
	seeds := []int64{1, 2}
	r := NewRunner()
	for _, spec := range specs {
		for _, seed := range seeds {
			for _, pol := range policies {
				spec := spec
				spec.Seed = seed
				opts := Options{
					Policy: pol, Seed: seed,
					DecisionTrace: DecisionTraceUnlimited,
				}
				fresh, freshTr := runBytes(t, func() (*Outcome, error) {
					return RunContext(context.Background(), spec, opts)
				})
				reused, reusedTr := runBytes(t, func() (*Outcome, error) {
					return r.RunContext(context.Background(), spec, opts)
				})
				if !bytes.Equal(fresh, reused) {
					t.Fatalf("%s/%s/seed %d: reused Runner produced different outcome JSON than a fresh run",
						pol, spec.Mix, seed)
				}
				if len(freshTr) == 0 {
					t.Fatalf("%s/%s/seed %d: no decision trace recorded", pol, spec.Mix, seed)
				}
				if !bytes.Equal(freshTr, reusedTr) {
					t.Fatalf("%s/%s/seed %d: reused Runner produced a different decision trace than a fresh run",
						pol, spec.Mix, seed)
				}
			}
		}
	}
}

// TestRunnerSurvivesResizeAndTraceHandoff interleaves machine sizes and
// KeepTrace runs: resizing re-dimensions the recycled machine and recorder,
// and a KeepTrace run hands its recorder to the caller, forcing the Runner
// to build a fresh one. The closing run must still match the opening one.
func TestRunnerSurvivesResizeAndTraceHandoff(t *testing.T) {
	base := WorkloadSpec{Mix: "w1", Load: 1.0, NCPU: 32, Seed: 5, Window: 60 * time.Second}
	opts := Options{Policy: PDPA, Seed: 5}
	r := NewRunner()

	first, _ := runBytes(t, func() (*Outcome, error) {
		return r.RunContext(context.Background(), base, opts)
	})

	small := base
	small.NCPU = 16
	if _, err := r.RunContext(context.Background(), small, opts); err != nil {
		t.Fatal(err)
	}
	kept := opts
	kept.KeepTrace = true
	out, err := r.RunContext(context.Background(), base, kept)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.RenderTrace(40, 0, 30*time.Second); len(got) == 0 {
		t.Fatal("KeepTrace run rendered an empty trace")
	}

	again, _ := runBytes(t, func() (*Outcome, error) {
		return r.RunContext(context.Background(), base, opts)
	})
	if !bytes.Equal(first, again) {
		t.Fatal("run after resize + KeepTrace handoff produced different bytes than the Runner's first run")
	}
}

// TestThroughputModeDeterministic pins throughput mode's determinism
// contract: for a fixed seed the fused run is reproducible byte for byte,
// both from fresh environments and from a reused Runner with dirty arenas.
// (It is NOT byte-equal to exact mode — measurements are sampled per fused
// span — which is why the claim is per-mode, not cross-mode.)
func TestThroughputModeDeterministic(t *testing.T) {
	spec := WorkloadSpec{Mix: "w1", Load: 1.0, NCPU: 32, Seed: 7, Window: 60 * time.Second}
	opts := Options{Policy: PDPA, Seed: 7, Throughput: 16}

	fresh := func() (*Outcome, error) { return RunContext(context.Background(), spec, opts) }
	first, _ := runBytes(t, fresh)
	second, _ := runBytes(t, fresh)
	if !bytes.Equal(first, second) {
		t.Fatal("two fresh throughput-mode runs of the same seed produced different JSON")
	}

	r := NewRunner()
	// Dirty the Runner's arenas with an exact-mode IRIX run first.
	if _, err := r.RunContext(context.Background(), spec, Options{Policy: IRIX, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	reused, _ := runBytes(t, func() (*Outcome, error) {
		return r.RunContext(context.Background(), spec, opts)
	})
	if !bytes.Equal(first, reused) {
		t.Fatal("reused-Runner throughput run produced different bytes than a fresh one")
	}
}
