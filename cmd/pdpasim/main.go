// Command pdpasim runs one workload under one scheduling policy and prints
// the per-class results — the basic unit of the paper's evaluation.
//
// Usage:
//
//	pdpasim -mix w3 -load 1.0 -policy pdpa
//	pdpasim -mix w4 -load 0.6 -policy equip -untuned 30
//	pdpasim -swf trace.swf -policy pdpa -trace
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pdpasim"
)

func main() {
	var (
		mix     = flag.String("mix", "w1", "workload mix: w1, w2, w3, or w4 (Table 1)")
		load    = flag.Float64("load", 1.0, "estimated processor demand fraction (0.6, 0.8, 1.0)")
		policy  = flag.String("policy", "pdpa", "scheduling policy: irix, equip, equal_eff, or pdpa")
		seed    = flag.Int64("seed", 1, "workload and noise seed")
		ml      = flag.Int("ml", 4, "fixed multiprogramming level (non-PDPA policies)")
		noise   = flag.Float64("noise", 0.01, "SelfAnalyzer measurement noise sigma (negative disables)")
		untuned = flag.Int("untuned", 0, "force every job's request to this many processors (0 = tuned)")
		swf     = flag.String("swf", "", "replay this SWF trace file instead of generating a workload")
		ncpu    = flag.Int("ncpu", 60, "machine size")
		showTr  = flag.Bool("trace", false, "print the execution trace view (Fig. 5 style)")
		target  = flag.Float64("target-eff", 0.7, "PDPA target efficiency")
		highEff = flag.Float64("high-eff", 0.9, "PDPA high efficiency")
		step    = flag.Int("step", 4, "PDPA allocation step")
		csvOut  = flag.String("csv", "", "write per-job results as CSV to this file")
		jsonOut = flag.String("json", "", "write the full result as JSON to this file")
		prvOut  = flag.String("paraver", "", "write the execution trace in Paraver format to this file")
		chrOut  = flag.String("chrome", "", "write the execution trace in Chrome trace-event format to this file")
		decOut  = flag.String("decisions", "", "write the decision trace as JSON to this file (\"-\" prints a human-readable log to stdout)")
		thru    = flag.Int("throughput", 0, "fuse up to this many undisturbed iterations per event (coarse throughput mode; 0 or 1 = exact)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		usageError(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}

	pol, err := pdpasim.ParsePolicy(*policy)
	if err != nil {
		usageError(err)
	}
	params := pdpasim.DefaultPDPAParams()
	params.TargetEff = *target
	params.HighEff = *highEff
	params.Step = *step
	params.BaseMPL = *ml
	opts := pdpasim.Options{
		Policy:     pol,
		PDPA:       params,
		FixedMPL:   *ml,
		NoiseSigma: *noise,
		Seed:       *seed,
		KeepTrace:  *showTr || *prvOut != "" || *chrOut != "",
		Throughput: *thru,
	}
	if *decOut != "" {
		opts.DecisionTrace = pdpasim.DecisionTraceUnlimited
	}
	spec := pdpasim.WorkloadSpec{
		Mix: *mix, Load: *load, NCPU: *ncpu, Seed: *seed, UniformRequest: *untuned,
	}
	// Reject bad flag combinations before simulating, through the same
	// validation path the pdpad daemon applies to incoming specs.
	if err := opts.Validate(); err != nil {
		usageError(err)
	}
	if *swf == "" {
		if err := spec.Validate(); err != nil {
			usageError(err)
		}
	}

	var out *pdpasim.Outcome
	if *swf != "" {
		f, ferr := os.Open(*swf)
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		out, err = pdpasim.RunSWFContext(context.Background(), f, opts)
	} else {
		out, err = pdpasim.RunContext(context.Background(), spec, opts)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Print(out.Summary())
	fmt.Printf("stability: %d migrations, avg burst %.0f ms, %.1f bursts/cpu\n",
		out.Migrations, out.AvgBurst.Seconds()*1000, out.BurstsPerCPU)
	if *showTr {
		fmt.Println()
		fmt.Print(out.RenderTrace(100, 0, 120*time.Second))
	}
	writeFile(*csvOut, out.WriteCSV)
	writeFile(*jsonOut, out.WriteJSON)
	writeFile(*prvOut, out.WriteParaver)
	writeFile(*chrOut, out.WriteChromeTracing)
	if *decOut == "-" {
		fmt.Printf("\ndecision trace (%d events):\n", out.DecisionTrace().Len())
		if err := out.DecisionTrace().WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	} else if *decOut != "" {
		writeFile(*decOut, out.DecisionTrace().WriteJSON)
	}
}

// writeFile writes one export to path using fn (no-op for an empty path).
func writeFile(path string, fn func(io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdpasim:", err)
	os.Exit(1)
}

// usageError reports a bad flag value and exits with the conventional usage
// status.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "pdpasim:", err)
	fmt.Fprintln(os.Stderr, "run with -h for usage")
	os.Exit(2)
}
