// Command pdpad is the simulation-as-a-service daemon: a long-running HTTP
// server that accepts WorkloadSpec+Options payloads, executes them on a
// bounded worker pool whose admission controller applies PDPA's coordinated
// multiprogramming-level rule to the service itself, dedupes identical specs
// through a canonical-config-hash result cache, streams per-run progress as
// server-sent events, serves each run's recorded decision trace, and exposes
// live Prometheus metrics.
//
// Usage:
//
//	pdpad -addr :8080 -base 4 -max 8 -warmup 500ms
//
// For chaos testing, -inject arms seeded fault rules at the daemon's
// injection sites using the same rule syntax scenario files use:
//
//	pdpad -inject "worker_start:error transient count=2" -inject-seed 7 -max-retries 3
//
// Quickstart:
//
//	curl -s localhost:8080/v1/runs -d '{"workload":{"mix":"w3"},"options":{"policy":"pdpa"}}'
//	curl -s localhost:8080/v1/runs/run-000001
//	curl -N localhost:8080/v1/runs/run-000001/events
//	curl -s localhost:8080/v1/runs/run-000001/trace
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight and
// queued runs, and exits; a second signal (or -drain-timeout) cancels the
// stragglers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdpasim/internal/faults"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
	"pdpasim/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		base         = flag.Int("base", 4, "base worker concurrency: below it admission is unconditional (PDPA's base MPL)")
		max          = flag.Int("max", 0, "max concurrent simulations (0 = 2×base)")
		warmup       = flag.Duration("warmup", 500*time.Millisecond, "how long a new run is considered settling; above base, admission waits for a stable running set")
		queueLimit   = flag.Int("queue", 256, "maximum queued runs")
		cacheSize    = flag.Int("cache", 128, "result cache entries")
		deadline     = flag.Duration("deadline", 0, "default per-run deadline, queue wait included (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for runs to finish before cancelling them")
		traceLimit   = flag.Int("trace-limit", 2000, "decision-trace events retained per run, served at /v1/runs/{id}/trace (negative disables tracing)")
		runTimeout   = flag.Duration("run-timeout", 0, "per-attempt wall-clock limit for a simulation; exceeded runs fail with a timeout error (0 = none)")
		maxRetries   = flag.Int("max-retries", 0, "retries for transiently failed runs, with exponential backoff (0 = none)")
		maxQueue     = flag.Int("max-queue", 0, "queue depth past which submissions are shed with 429 + Retry-After (0 = shed only at -queue)")
		injectSeed   = flag.Int64("inject-seed", 1, "seed for probabilistic -inject rules")
		storeDir     = flag.String("store", "", "directory for the durable run store; completed runs survive restarts (empty = in-memory only)")
		storeSync    = flag.Duration("store-sync", 50*time.Millisecond, "fsync batching interval for the run store (negative = fsync every append)")
	)
	var injectRules []faults.Rule
	flag.Func("inject", "fault-injection rule \"<site>:<kind> [after=N] [count=N] [prob=F] [delay=DUR] [transient] [err=MSG]\" (repeatable; chaos testing — same syntax as scenario files)",
		func(s string) error {
			rules, err := faults.ParseRules(s)
			if err != nil {
				return err
			}
			injectRules = append(injectRules, rules...)
			return nil
		})
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pdpad: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *base < 1 || *max < 0 || *queueLimit < 1 || *cacheSize < 1 || *warmup < 0 || *deadline < 0 || *drainTimeout <= 0 ||
		*runTimeout < 0 || *maxRetries < 0 || *maxQueue < 0 {
		fmt.Fprintln(os.Stderr, "pdpad: flag values must be positive")
		os.Exit(2)
	}
	if *max == 0 {
		*max = 2 * *base
	}

	var inj *faults.Injector
	var serverOpts []server.Option
	if len(injectRules) > 0 {
		inj = faults.New(*injectSeed, injectRules...)
		serverOpts = append(serverOpts, server.WithFaults(inj))
		log.Printf("pdpad: fault injection armed: %d rule(s), seed %d", len(injectRules), *injectSeed)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{SyncInterval: *storeSync})
		if err != nil {
			log.Fatalf("pdpad: open store %s: %v", *storeDir, err)
		}
		stats := st.Stats()
		log.Printf("pdpad: store %s: recovered %d record(s) (%d truncated tail(s), %d corrupt frame(s))",
			*storeDir, stats.RecoveredEntries, stats.TruncatedTails, stats.CorruptFrames)
	}

	pool := runqueue.New(runqueue.Config{
		BaseWorkers:     *base,
		MaxWorkers:      *max,
		Warmup:          *warmup,
		QueueLimit:      *queueLimit,
		CacheSize:       *cacheSize,
		DefaultDeadline: *deadline,
		TraceLimit:      *traceLimit,
		RunTimeout:      *runTimeout,
		MaxRetries:      *maxRetries,
		ShedDepth:       *maxQueue,
		Faults:          inj,
		Store:           st,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: server.New(pool, serverOpts...)}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	log.Printf("pdpad: serving on %s (base %d, max %d, warmup %v)", *addr, *base, *max, *warmup)

	select {
	case err := <-serveErr:
		log.Fatalf("pdpad: serve: %v", err)
	case sig := <-sigs:
		log.Printf("pdpad: %v: draining (in-flight and queued runs complete; again to force)", sig)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sigs
		log.Print("pdpad: second signal: cancelling remaining runs")
		cancel()
	}()
	if err := pool.Drain(drainCtx); err != nil {
		log.Printf("pdpad: drain cut short: %v", err)
	}
	cancel()
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pdpad: http shutdown: %v", err)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("pdpad: store close: %v", err)
		}
	}
	log.Print("pdpad: bye")
}
