// Command pdpad is the simulation-as-a-service daemon: a long-running HTTP
// server that accepts WorkloadSpec+Options payloads, executes them on a
// bounded worker pool whose admission controller applies PDPA's coordinated
// multiprogramming-level rule to the service itself, dedupes identical specs
// through a canonical-config-hash result cache, streams per-run progress as
// server-sent events, serves each run's recorded decision trace, and exposes
// live Prometheus metrics.
//
// Usage:
//
//	pdpad -addr :8080 -base 4 -max 8 -warmup 500ms
//
// The daemon also runs at cluster scale. A coordinator owns admission and
// routing for a fleet of nodes, serving the same v1 surface plus the node
// plane (GET /v1/nodes, cordon/drain); nodes are ordinary daemons that join
// a coordinator and heartbeat their load:
//
//	pdpad -coordinator -addr :8080 -placement least_loaded
//	pdpad -node -join http://coord:8080 -addr :8081 -advertise http://node1:8081
//
// A coordinator given -store persists its routing table — the run registry,
// sweep shard map, and node ledger — so a crashed or killed coordinator can
// be restarted on the same store and resume where it left off: nodes
// re-register, completed results are adopted verbatim, in-flight runs are
// resumed, and interrupted sweeps finish with byte-identical cells.
// -drain-idle-after and -join-backlog arm the elasticity hooks that retire
// idle nodes (never below -min-nodes) and signal for more when the queue
// backs up:
//
//	pdpad -coordinator -addr :8080 -store /var/lib/pdpad/coord \
//	      -drain-idle-after 5m -min-nodes 2 -join-backlog 16
//
// For chaos testing, -inject arms seeded fault rules at the daemon's
// injection sites using the same rule syntax scenario files use:
//
//	pdpad -inject "worker_start:error transient count=2" -inject-seed 7 -max-retries 3
//
// Quickstart:
//
//	curl -s localhost:8080/v1/runs -d '{"workload":{"mix":"w3"},"options":{"policy":"pdpa"}}'
//	curl -s localhost:8080/v1/runs/run-000001
//	curl -N localhost:8080/v1/runs/run-000001/events
//	curl -s localhost:8080/v1/runs/run-000001/trace
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight and
// queued runs, and exits; a second signal (or -drain-timeout) cancels the
// stragglers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pdpasim/internal/faults"
	"pdpasim/internal/fleet"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
	"pdpasim/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		base         = flag.Int("base", 4, "base worker concurrency: below it admission is unconditional (PDPA's base MPL)")
		max          = flag.Int("max", 0, "max concurrent simulations (0 = 2×base)")
		warmup       = flag.Duration("warmup", 500*time.Millisecond, "how long a new run is considered settling; above base, admission waits for a stable running set")
		queueLimit   = flag.Int("queue", 256, "maximum queued runs")
		cacheSize    = flag.Int("cache", 128, "result cache entries")
		deadline     = flag.Duration("deadline", 0, "default per-run deadline, queue wait included (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for runs to finish before cancelling them")
		traceLimit   = flag.Int("trace-limit", 2000, "decision-trace events retained per run, served at /v1/runs/{id}/trace (negative disables tracing)")
		runTimeout   = flag.Duration("run-timeout", 0, "per-attempt wall-clock limit for a simulation; exceeded runs fail with a timeout error (0 = none)")
		maxRetries   = flag.Int("max-retries", 0, "retries for transiently failed runs, with exponential backoff (0 = none)")
		maxQueue     = flag.Int("max-queue", 0, "queue depth past which submissions are shed with 429 + Retry-After (0 = shed only at -queue)")
		injectSeed   = flag.Int64("inject-seed", 1, "seed for probabilistic -inject rules")
		storeDir     = flag.String("store", "", "directory for the durable run store; completed runs survive restarts (empty = in-memory only)")
		storeSync    = flag.Duration("store-sync", 50*time.Millisecond, "fsync batching interval for the run store (negative = fsync every append)")

		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator: admission and routing only, no local simulations")
		nodeMode    = flag.Bool("node", false, "run as a fleet node: an ordinary daemon that joins a coordinator")
		join        = flag.String("join", "", "coordinator base URL to join (requires -node)")
		advertise   = flag.String("advertise", "", "base URL the coordinator should reach this node at (default derived from -addr)")
		nodeName    = flag.String("node-name", "", "human label for this node in the coordinator's node list")
		placement   = flag.String("placement", "round_robin", "coordinator placement strategy: round_robin, least_loaded, or lpt")
		heartbeat   = flag.Duration("heartbeat", 2*time.Second, "coordinator-directed node heartbeat interval")
		unhealthy   = flag.Duration("unhealthy-after", 0, "heartbeat silence before a node stops receiving placements (0 = 3×heartbeat)")
		deadAfter   = flag.Duration("dead-after", 0, "heartbeat silence before a node is drained and its runs requeued (0 = 2×unhealthy-after)")
		maxRequeues = flag.Int("max-requeues", 3, "re-placements one run may survive after node deaths before failing")
		drainIdle   = flag.Duration("drain-idle-after", 0, "coordinator: scale-drain a node idle this long, never below -min-nodes (0 = disabled)")
		minNodes    = flag.Int("min-nodes", 0, "coordinator: floor of ready nodes the idle-drain rule preserves (0 = 1)")
		joinBacklog = flag.Int("join-backlog", 0, "coordinator: queue depth that fires a scale-up signal, once per backlog episode (0 = disabled)")
	)
	var injectRules []faults.Rule
	flag.Func("inject", "fault-injection rule \"<site>:<kind> [after=N] [count=N] [prob=F] [delay=DUR] [transient] [err=MSG]\" (repeatable; chaos testing — same syntax as scenario files)",
		func(s string) error {
			rules, err := faults.ParseRules(s)
			if err != nil {
				return err
			}
			injectRules = append(injectRules, rules...)
			return nil
		})
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pdpad: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *base < 1 || *max < 0 || *queueLimit < 1 || *cacheSize < 1 || *warmup < 0 || *deadline < 0 || *drainTimeout <= 0 ||
		*runTimeout < 0 || *maxRetries < 0 || *maxQueue < 0 || *heartbeat <= 0 || *unhealthy < 0 || *deadAfter < 0 || *maxRequeues < 0 ||
		*drainIdle < 0 || *minNodes < 0 || *joinBacklog < 0 {
		fmt.Fprintln(os.Stderr, "pdpad: flag values must be positive")
		os.Exit(2)
	}
	if *coordinator && *nodeMode {
		fmt.Fprintln(os.Stderr, "pdpad: -coordinator and -node are mutually exclusive")
		os.Exit(2)
	}
	if *nodeMode && *join == "" {
		fmt.Fprintln(os.Stderr, "pdpad: -node requires -join <coordinator URL>")
		os.Exit(2)
	}
	if *join != "" && !*nodeMode {
		fmt.Fprintln(os.Stderr, "pdpad: -join requires -node")
		os.Exit(2)
	}
	if *max == 0 {
		*max = 2 * *base
	}

	var inj *faults.Injector
	if len(injectRules) > 0 {
		inj = faults.New(*injectSeed, injectRules...)
		log.Printf("pdpad: fault injection armed: %d rule(s), seed %d", len(injectRules), *injectSeed)
	}

	if *coordinator {
		runCoordinator(coordFlags{
			addr:         *addr,
			placement:    *placement,
			heartbeat:    *heartbeat,
			unhealthy:    *unhealthy,
			deadAfter:    *deadAfter,
			maxRequeues:  *maxRequeues,
			drainTimeout: *drainTimeout,
			storeDir:     *storeDir,
			storeSync:    *storeSync,
			drainIdle:    *drainIdle,
			minNodes:     *minNodes,
			joinBacklog:  *joinBacklog,
			inj:          inj,
		})
		return
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{SyncInterval: *storeSync})
		if err != nil {
			log.Fatalf("pdpad: open store %s: %v", *storeDir, err)
		}
		stats := st.Stats()
		log.Printf("pdpad: store %s: recovered %d record(s) (%d truncated tail(s), %d corrupt frame(s))",
			*storeDir, stats.RecoveredEntries, stats.TruncatedTails, stats.CorruptFrames)
	}

	pool := runqueue.New(runqueue.Config{
		BaseWorkers:     *base,
		MaxWorkers:      *max,
		Warmup:          *warmup,
		QueueLimit:      *queueLimit,
		CacheSize:       *cacheSize,
		DefaultDeadline: *deadline,
		TraceLimit:      *traceLimit,
		RunTimeout:      *runTimeout,
		MaxRetries:      *maxRetries,
		ShedDepth:       *maxQueue,
		Faults:          inj,
		Store:           st,
	})
	serverOpts := []server.Option{}
	if inj != nil {
		serverOpts = append(serverOpts, server.WithFaults(inj))
	}

	var agent *fleet.Agent
	if *nodeMode {
		serverOpts = append(serverOpts, server.WithRole(server.RoleNode))
		agent = fleet.StartAgent(fleet.AgentConfig{
			Coordinator: strings.TrimRight(*join, "/"),
			Advertise:   deriveAdvertise(*advertise, *addr),
			Name:        *nodeName,
			CPUs:        *base, // capacity hint: the pool's admission floor
			BaseWorkers: *base,
			MaxWorkers:  *max,
			Faults:      inj,
			Logf:        log.Printf,
		}, pool)
		log.Printf("pdpad: joining fleet at %s as %s", *join, deriveAdvertise(*advertise, *addr))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: server.New(pool, serverOpts...)}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	log.Printf("pdpad: serving on %s (base %d, max %d, warmup %v)", *addr, *base, *max, *warmup)

	select {
	case err := <-serveErr:
		log.Fatalf("pdpad: serve: %v", err)
	case sig := <-sigs:
		log.Printf("pdpad: %v: draining (in-flight and queued runs complete; again to force)", sig)
	}

	// Drain with the agent still heartbeating: the pool's draining flag
	// rides the heartbeats, so the coordinator stops placing here first.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sigs
		log.Print("pdpad: second signal: cancelling remaining runs")
		cancel()
	}()
	if err := pool.Drain(drainCtx); err != nil {
		log.Printf("pdpad: drain cut short: %v", err)
	}
	cancel()
	if agent != nil {
		agent.Stop()
	}
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pdpad: http shutdown: %v", err)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("pdpad: store close: %v", err)
		}
	}
	log.Print("pdpad: bye")
}

type coordFlags struct {
	addr         string
	placement    string
	heartbeat    time.Duration
	unhealthy    time.Duration
	deadAfter    time.Duration
	maxRequeues  int
	drainTimeout time.Duration
	storeDir     string
	storeSync    time.Duration
	drainIdle    time.Duration
	minNodes     int
	joinBacklog  int
	inj          *faults.Injector
}

func runCoordinator(f coordFlags) {
	var st *store.Store
	if f.storeDir != "" {
		var err error
		st, err = store.Open(f.storeDir, store.Options{SyncInterval: f.storeSync})
		if err != nil {
			log.Fatalf("pdpad: open store %s: %v", f.storeDir, err)
		}
		stats := st.Stats()
		log.Printf("pdpad: coordinator store %s: recovered %d record(s) (%d truncated tail(s), %d corrupt frame(s))",
			f.storeDir, stats.RecoveredEntries, stats.TruncatedTails, stats.CorruptFrames)
	}
	coord, err := fleet.NewCoordinator(fleet.Config{
		Placement: fleet.Placement(f.placement),
		Health: fleet.HealthConfig{
			HeartbeatInterval: f.heartbeat,
			UnhealthyAfter:    f.unhealthy,
			DeadAfter:         f.deadAfter,
		},
		MaxRequeues: f.maxRequeues,
		Store:       st,
		Elastic: fleet.ElasticConfig{
			DrainIdleAfter:   f.drainIdle,
			MinNodes:         f.minNodes,
			JoinBacklogDepth: f.joinBacklog,
			OnScaleDown: func(nodeID string) {
				log.Printf("pdpad: scale-down: drained idle node %s", nodeID)
			},
			OnScaleUp: func(depth int) {
				log.Printf("pdpad: scale-up: queue backlog at %d, fleet wants another node", depth)
			},
		},
		Faults: f.inj,
		Logf:   log.Printf,
	})
	if err != nil {
		log.Fatalf("pdpad: %v", err)
	}
	httpSrv := &http.Server{Addr: f.addr, Handler: coord}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	log.Printf("pdpad: coordinating on %s (placement %s, heartbeat %v)", f.addr, f.placement, f.heartbeat)

	select {
	case err := <-serveErr:
		log.Fatalf("pdpad: serve: %v", err)
	case sig := <-sigs:
		log.Printf("pdpad: %v: draining fleet (placed runs complete; again to force)", sig)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), f.drainTimeout)
	go func() {
		<-sigs
		log.Print("pdpad: second signal: abandoning remaining runs")
		cancel()
	}()
	if err := coord.Drain(drainCtx); err != nil {
		log.Printf("pdpad: drain cut short: %v", err)
	}
	cancel()
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pdpad: http shutdown: %v", err)
	}
	coord.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("pdpad: store close: %v", err)
		}
	}
	log.Print("pdpad: bye")
}

// deriveAdvertise fills a missing -advertise from the listen address: a
// bare ":8081" becomes a loopback URL, a host:port gets the scheme.
func deriveAdvertise(advertise, addr string) string {
	if advertise != "" {
		return strings.TrimRight(advertise, "/")
	}
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}
