// Command pdpaload drives sustained submit/poll/SSE traffic against a live
// pdpad daemon and reports what the service did under load: client-observed
// latency percentiles, completion and shed counts, and whether the daemon's
// backpressure contract held (429 responses carry retry hints, which the
// load generator honors).
//
// Usage:
//
//	pdpaload -addr http://localhost:8080 -duration 30s -workers 16
//
// Each worker runs a closed loop: submit a distinct spec, follow the run to
// a terminal state (polling, or via SSE for -sse-fraction of the runs),
// record the submit-to-terminal latency, repeat. A -cache-fraction of
// submissions repeat an earlier spec to exercise the daemon's result cache.
// When the daemon sheds (429), the worker sleeps the advertised
// retry_after_seconds and tries again — so a soak against an overloaded
// daemon measures the shed/retry path rather than hammering it.
//
// The generator speaks the v1 surface through the public client package;
// its contract checks (429 header/envelope coherence, decodable bodies)
// surface as *client.ContractError and are counted as bad_responses. Since
// a coordinator serves the same v1 surface, -addr may point at one to soak
// a whole fleet.
//
// Assertion flags turn the report into a gate for CI:
//
//	pdpaload -duration 10s -workers 16 -min-completed 20 -require-shed -max-p99 5s
//
// Exit status: 0 when the soak ran and every assertion held, 1 when an
// assertion failed, 2 when the soak could not run at all.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pdpasim/client"
	"pdpasim/internal/leakcheck"
)

func main() {
	cfg := defaultConfig()
	flag.StringVar(&cfg.Addr, "addr", "http://localhost:8080", "base URL of the pdpad daemon (standalone or coordinator)")
	flag.DurationVar(&cfg.Duration, "duration", 30*time.Second, "how long to keep submitting")
	flag.IntVar(&cfg.Workers, "workers", 8, "concurrent closed-loop submitters")
	flag.Float64Var(&cfg.SSEFraction, "sse-fraction", 0.25, "fraction of runs followed via SSE instead of polling")
	flag.Float64Var(&cfg.CacheFraction, "cache-fraction", 0.25, "fraction of submissions repeating an earlier spec")
	flag.DurationVar(&cfg.PollInterval, "poll-interval", 20*time.Millisecond, "status poll cadence")
	flag.DurationVar(&cfg.RunTimeout, "run-timeout", 60*time.Second, "give up following a run after this long")
	maxP99 := flag.Duration("max-p99", 0, "fail (exit 1) when the submit-to-terminal p99 exceeds this (0 = no bound)")
	requireShed := flag.Bool("require-shed", false, "fail (exit 1) unless at least one 429 shed with a retry hint was observed")
	minCompleted := flag.Int("min-completed", 1, "fail (exit 1) with fewer completed runs")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	flag.Parse()

	baseline := leakcheck.Snapshot()
	report, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdpaload:", err)
		os.Exit(2)
	}
	if lerr := baseline.Wait(leakcheck.Grace); lerr != nil {
		report.LeakedGoroutines = lerr.Error()
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(report)
	} else {
		fmt.Print(report.Text())
	}

	failed := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			failed = true
			fmt.Fprintf(os.Stderr, "pdpaload: FAIL: "+format+"\n", args...)
		}
	}
	check(report.Completed >= *minCompleted,
		"completed %d runs, want >= %d", report.Completed, *minCompleted)
	check(*maxP99 == 0 || report.P99 <= *maxP99,
		"p99 %v exceeds bound %v", report.P99, *maxP99)
	check(!*requireShed || (report.Shed > 0 && report.RetryHintsSeen > 0),
		"no shed with retry hint observed (shed %d, hints %d)", report.Shed, report.RetryHintsSeen)
	check(report.BadResponses == 0,
		"%d responses outside the v1 contract (last: %s)", report.BadResponses, report.LastBadResponse)
	check(report.LeakedGoroutines == "",
		"load generator leaked goroutines:\n%s", report.LeakedGoroutines)
	if failed {
		os.Exit(1)
	}
}

// loadConfig parameterizes one soak.
type loadConfig struct {
	Addr          string
	Duration      time.Duration
	Workers       int
	SSEFraction   float64
	CacheFraction float64
	PollInterval  time.Duration
	RunTimeout    time.Duration
}

func defaultConfig() loadConfig {
	return loadConfig{
		Addr: "http://localhost:8080", Duration: 30 * time.Second, Workers: 8,
		SSEFraction: 0.25, CacheFraction: 0.25,
		PollInterval: 20 * time.Millisecond, RunTimeout: 60 * time.Second,
	}
}

// Report is what a soak measured.
type Report struct {
	DurationS float64 `json:"duration_s"`
	Workers   int     `json:"workers"`

	Submitted int `json:"submitted"`
	Completed int `json:"completed"` // runs followed to state done
	Failed    int `json:"failed"`    // terminal failed/canceled
	CacheHits int `json:"cache_hits"`
	SSERuns   int `json:"sse_runs"`

	// Shed counts 429 responses; RetryHintsSeen counts those carrying a
	// positive retry_after_seconds in the envelope that matched the
	// Retry-After header. Draining counts 503s during shutdown.
	Shed           int `json:"shed"`
	RetryHintsSeen int `json:"retry_hints_seen"`
	Draining       int `json:"draining"`

	// BadResponses counts responses violating the v1 contract — a non-2xx
	// without a well-formed error envelope, or an unexpected status.
	BadResponses    int    `json:"bad_responses"`
	LastBadResponse string `json:"last_bad_response,omitempty"`

	// Client-observed submit-to-terminal latency percentiles.
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`

	// DaemonMetrics samples selected pdpad_* series from /metrics after the
	// soak (absent when the scrape failed).
	DaemonMetrics map[string]float64 `json:"daemon_metrics,omitempty"`

	LeakedGoroutines string `json:"leaked_goroutines,omitempty"`
}

// Text renders the human-readable report.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pdpaload: %d workers for %.1fs\n", r.Workers, r.DurationS)
	fmt.Fprintf(&b, "  submitted %d (cache hits %d, via SSE %d)\n", r.Submitted, r.CacheHits, r.SSERuns)
	fmt.Fprintf(&b, "  completed %d, failed %d (%.1f runs/s)\n",
		r.Completed, r.Failed, float64(r.Completed)/r.DurationS)
	fmt.Fprintf(&b, "  shed %d (retry hints %d), draining %d, contract violations %d\n",
		r.Shed, r.RetryHintsSeen, r.Draining, r.BadResponses)
	fmt.Fprintf(&b, "  latency p50 %v  p95 %v  p99 %v  max %v\n",
		r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond),
		r.P99.Round(time.Millisecond), r.Max.Round(time.Millisecond))
	if len(r.DaemonMetrics) > 0 {
		keys := make([]string, 0, len(r.DaemonMetrics))
		for k := range r.DaemonMetrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  daemon:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%g", strings.TrimPrefix(k, "pdpad_"), r.DaemonMetrics[k])
		}
		b.WriteString("\n")
	}
	if r.LeakedGoroutines != "" {
		fmt.Fprintf(&b, "  LEAK: %s\n", r.LeakedGoroutines)
	}
	return b.String()
}

// loadState is the soak's shared mutable state.
type loadState struct {
	cfg  loadConfig
	cli  *client.Client
	stop <-chan struct{}

	mu        sync.Mutex
	report    Report
	latencies []time.Duration

	seq atomic.Int64
}

// runLoad executes one soak and assembles the report.
func runLoad(cfg loadConfig) (*Report, error) {
	if cfg.Workers < 1 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("need positive workers and duration")
	}
	// The soak verifies the shed contract itself, so the client carries no
	// retry budget; the http.Client timeout bounds every call, SSE included.
	cli := client.New(cfg.Addr, client.WithHTTPClient(&http.Client{Timeout: cfg.RunTimeout}))
	// Fail fast when no daemon is listening — a soak against nothing should
	// be exit 2, not a report full of zeroes.
	if _, err := cli.Health(context.Background()); err != nil {
		return nil, fmt.Errorf("daemon unreachable: %w", err)
	}

	stop := make(chan struct{})
	st := &loadState{cfg: cfg, cli: cli, stop: stop}
	st.report.Workers = cfg.Workers

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			st.workerLoop(worker)
		}(i)
	}
	time.AfterFunc(cfg.Duration, func() { close(stop) })
	wg.Wait()
	st.report.DurationS = time.Since(start).Seconds()

	sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
	st.report.P50 = percentile(st.latencies, 0.50)
	st.report.P95 = percentile(st.latencies, 0.95)
	st.report.P99 = percentile(st.latencies, 0.99)
	if n := len(st.latencies); n > 0 {
		st.report.Max = st.latencies[n-1]
	}
	st.report.DaemonMetrics = scrapeMetrics(cli)
	// Drop pooled keep-alive connections so their persistConn goroutines
	// exit before the caller's leak check runs.
	cli.CloseIdleConnections()
	return &st.report, nil
}

// percentile reads the q-quantile from sorted samples (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// workerLoop is one closed-loop submitter: submit, follow to terminal,
// record, repeat until the soak ends.
func (st *loadState) workerLoop(worker int) {
	rng := rand.New(rand.NewSource(int64(worker) + 1))
	for {
		select {
		case <-st.stop:
			return
		default:
		}
		st.oneRun(rng)
	}
}

// specFor renders a small distinct spec; seed diversity makes each
// submission a fresh simulation, reuse makes it a cache hit.
func specFor(seed int64) client.SubmitRunRequest {
	return client.SubmitRunRequest{
		Workload: client.Workload{Mix: "w1", Load: 0.6, WindowS: 60, Seed: seed},
		Options:  client.RunOptions{Policy: "equip"},
	}
}

func (st *loadState) oneRun(rng *rand.Rand) {
	seq := st.seq.Add(1)
	seed := seq
	if rng.Float64() < st.cfg.CacheFraction && seq > int64(st.cfg.Workers) {
		seed = 1 + rng.Int63n(seq-1) // repeat an earlier spec
	}

	submitted := time.Now()
	res, err := st.cli.SubmitRun(context.Background(), specFor(seed))
	if err != nil {
		st.noteSubmitError(err)
		return
	}
	st.note(func(r *Report) {
		r.Submitted++
		if res.CacheHit {
			r.CacheHits++
		}
	})
	st.follow(rng, res.ID, submitted)
}

// noteSubmitError classifies a failed submission. The client has already
// enforced the envelope contract: a coherent 429 arrives as an *APIError
// whose retry hint is trusted, an incoherent one as a *ContractError.
func (st *loadState) noteSubmitError(err error) {
	var api *client.APIError
	var contract *client.ContractError
	switch {
	case errors.As(err, &api) && api.IsShed():
		st.note(func(r *Report) { r.Shed++; r.RetryHintsSeen++ })
		st.sleep(time.Duration(api.RetryAfterSeconds) * time.Second)
	case errors.As(err, &api) && api.Status == http.StatusServiceUnavailable:
		st.note(func(r *Report) { r.Draining++ })
		st.sleep(time.Second)
	case errors.As(err, &contract):
		st.note(func(r *Report) {
			r.BadResponses++
			if contract.Status == http.StatusTooManyRequests {
				r.Shed++ // an incoherent 429 is still a shed, just a broken one
			}
			r.LastBadResponse = fmt.Sprintf("submit: %s: %s", contract.Detail, trim(contract.Body))
		})
	default:
		st.note(func(r *Report) { r.BadResponses++; r.LastBadResponse = err.Error() })
	}
}

// follow tracks a submitted run to a terminal state, via SSE for a fraction
// of runs and polling otherwise, and records the latency.
func (st *loadState) follow(rng *rand.Rand, id string, submitted time.Time) {
	var state string
	if rng.Float64() < st.cfg.SSEFraction {
		state = st.followSSE(id)
		if state != "" {
			st.note(func(r *Report) { r.SSERuns++ })
		}
	}
	if state == "" {
		state = st.poll(id)
	}
	if state == "" {
		return // soak ended or run timed out mid-follow
	}
	latency := time.Since(submitted)
	st.note(func(r *Report) {
		if state == "done" {
			r.Completed++
		} else {
			r.Failed++
		}
	})
	st.mu.Lock()
	st.latencies = append(st.latencies, latency)
	st.mu.Unlock()
}

// poll fetches the run's status until it is terminal. Returns "" on
// timeout or when the run outlives the soak's grace period.
func (st *loadState) poll(id string) string {
	deadline := time.Now().Add(st.cfg.RunTimeout)
	var stopped time.Time
	for time.Now().Before(deadline) {
		v, err := st.cli.Run(context.Background(), id)
		if err != nil {
			var api *client.APIError
			var contract *client.ContractError
			if errors.As(err, &api) || errors.As(err, &contract) {
				st.note(func(r *Report) {
					r.BadResponses++
					r.LastBadResponse = fmt.Sprintf("poll %s: %v", id, err)
				})
			}
			return ""
		}
		if v.Terminal() {
			return v.State
		}
		time.Sleep(st.cfg.PollInterval)
		// After the soak ends keep following briefly so in-flight latencies
		// still land, then abandon runs that outlive the grace period.
		select {
		case <-st.stop:
			if stopped.IsZero() {
				stopped = time.Now()
			} else if time.Since(stopped) > 2*time.Second {
				return ""
			}
		default:
		}
	}
	return ""
}

// followSSE streams the run's lifecycle events and returns its terminal
// state, or "" to fall back to polling.
func (st *loadState) followSSE(id string) string {
	var last string
	err := st.cli.FollowRun(context.Background(), id, func(ev client.Event) bool {
		last = ev.State
		return true
	})
	if err != nil || !client.Terminal(last) {
		return "" // stream refused or ended early; polling resolves it
	}
	return last
}

// scrapeMetrics samples the daemon's counters most relevant to a soak.
func scrapeMetrics(cli *client.Client) map[string]float64 {
	all, err := cli.Metrics(context.Background())
	if err != nil {
		return nil
	}
	want := []string{
		"pdpad_sheds_total", "pdpad_cache_hits_total",
		"pdpad_runs_finished_total", "pdpad_store_appended_entries_total",
		"pdpad_store_fsyncs_total", "pdpad_store_journal_bytes",
		"pdpad_recovered_panics_total",
		// Fleet families, present when -addr points at a coordinator.
		"pdpad_fleet_dispatches_total", "pdpad_fleet_requeues_total",
		"pdpad_fleet_node_deaths_total",
	}
	out := make(map[string]float64)
	for _, k := range want {
		if v, ok := all[k]; ok {
			out[k] = v
		}
	}
	return out
}

// note applies a mutation to the report under the lock.
func (st *loadState) note(fn func(*Report)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	fn(&st.report)
}

// sleep waits d or until the soak stops.
func (st *loadState) sleep(d time.Duration) {
	select {
	case <-time.After(d):
	case <-st.stop:
	}
}

// trim bounds a body for error messages.
func trim(body []byte) string {
	s := strings.Join(strings.Fields(string(body)), " ")
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}
