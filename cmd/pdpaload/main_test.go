package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pdpasim"
	"pdpasim/internal/leakcheck"
	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
)

// slowStubSim simulates ~25ms of work so a closed-loop soak with more
// workers than pool capacity reliably drives the shed path.
func slowStubSim(ctx context.Context, spec runqueue.Spec) (*pdpasim.Outcome, error) {
	select {
	case <-time.After(25 * time.Millisecond):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return pdpasim.RunContext(ctx, pdpasim.WorkloadSpec{
		Mix: "w1", Load: 0.3, NCPU: 8, Window: time.Second, Seed: spec.Workload.Seed,
	}, pdpasim.Options{Policy: pdpasim.Equipartition})
}

// TestRunLoadSoak drives the real load generator against an in-process
// pdpad surface sized to shed: completions, cache hits, SSE follows, and
// coherent 429 retry hints must all show up in the report, with zero
// contract violations.
func TestRunLoadSoak(t *testing.T) {
	defer leakcheck.Check(t)
	pool := runqueue.New(runqueue.Config{
		BaseWorkers: 1,
		MaxWorkers:  1,
		ShedDepth:   2,
		Warmup:      time.Millisecond,
		Simulate:    slowStubSim,
	})
	ts := httptest.NewServer(server.New(pool))
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool.Drain(ctx)
	}()

	cfg := defaultConfig()
	cfg.Addr = ts.URL
	cfg.Duration = 2 * time.Second
	cfg.Workers = 8
	cfg.PollInterval = 5 * time.Millisecond
	cfg.RunTimeout = 10 * time.Second

	report, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(strings.TrimRight(report.Text(), "\n"))

	if report.Completed == 0 {
		t.Error("soak completed no runs")
	}
	if report.Submitted < report.Completed {
		t.Errorf("submitted %d < completed %d", report.Submitted, report.Completed)
	}
	if report.Shed == 0 {
		t.Error("8 workers against a 1-worker shed-depth-2 pool never shed")
	}
	if report.RetryHintsSeen != report.Shed {
		t.Errorf("%d sheds but only %d coherent retry hints", report.Shed, report.RetryHintsSeen)
	}
	if report.BadResponses != 0 {
		t.Errorf("%d contract violations, last: %s", report.BadResponses, report.LastBadResponse)
	}
	if report.P50 <= 0 || report.P99 < report.P50 || report.Max < report.P99 {
		t.Errorf("implausible percentiles: p50 %v p99 %v max %v", report.P50, report.P99, report.Max)
	}
	if report.DaemonMetrics["pdpad_sheds_total"] == 0 {
		t.Errorf("daemon metrics missing shed count: %v", report.DaemonMetrics)
	}
	if report.Text() == "" {
		t.Error("empty text report")
	}
}

// TestRunLoadUnreachable: a soak against nothing is a hard error (exit 2),
// not a report of zeroes.
func TestRunLoadUnreachable(t *testing.T) {
	cfg := defaultConfig()
	cfg.Addr = "http://127.0.0.1:1" // reserved port, nothing listens
	cfg.Duration = time.Second
	if _, err := runLoad(cfg); err == nil {
		t.Fatal("expected an error against an unreachable daemon")
	}
}

func TestRunLoadRejectsBadConfig(t *testing.T) {
	cfg := defaultConfig()
	cfg.Workers = 0
	if _, err := runLoad(cfg); err == nil {
		t.Fatal("expected an error for zero workers")
	}
}

func TestPercentile(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile of no samples = %v, want 0", got)
	}
	if got := percentile(sorted[:1], 0.99); got != time.Millisecond {
		t.Errorf("percentile of one sample = %v, want 1ms", got)
	}
}
