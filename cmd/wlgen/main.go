// Command wlgen generates workload trace files in the Standard Workload
// Format (Feitelson SWF v2), the format the paper's evaluation traces use.
// The identical trace replayed under different policies is what makes the
// comparison repeatable.
//
// Usage:
//
//	wlgen -mix w3 -load 1.0 -seed 7 > w3-100.swf
//	wlgen -mix w4 -load 0.6 -untuned 30 -out w4-untuned.swf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pdpasim"
)

func main() {
	var (
		mix     = flag.String("mix", "w1", "workload mix: w1, w2, w3, or w4")
		load    = flag.Float64("load", 1.0, "estimated processor demand fraction")
		seed    = flag.Int64("seed", 1, "arrival process seed")
		ncpu    = flag.Int("ncpu", 60, "machine size")
		untuned = flag.Int("untuned", 0, "force every request to this many processors (0 = tuned)")
		outPath = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	spec := pdpasim.WorkloadSpec{
		Mix: *mix, Load: *load, NCPU: *ncpu, Seed: *seed, UniformRequest: *untuned,
	}
	if err := spec.WriteSWF(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wlgen:", err)
	os.Exit(1)
}
