// Command benchgate records and gates benchmark results.
//
// It is the repo's stdlib-only stand-in for benchstat: `record` parses the
// output of `go test -bench -benchmem` and stores a named phase (pre/post/...)
// into a BENCH_<date>.json trajectory point; `compare` parses a fresh bench
// run and fails when a gated benchmark regressed beyond tolerance against the
// committed baseline.
//
//	go test -run '^$' -bench 'SingleRun|Sweep$' -benchmem -count 5 . | tee bench.txt
//	benchgate record -out BENCH_2026-08-05.json -phase post bench.txt
//	benchgate compare -baseline BENCH_2026-08-05.json bench.txt
//
// Wall-clock per op is gated loosely (CI machines are noisy); allocs/op and
// B/op are near-deterministic and gated tightly — allocs/op catches an
// accidental return to map-and-copy hot paths, and B/op catches the
// complementary regression where the allocation count stays flat but each
// allocation balloons (an oversized slab, a copy instead of a handoff).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Phase is one labeled set of results (e.g. "pre" and "post" around an
// optimization PR).
type Phase struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// File is the BENCH_<date>.json schema.
type File struct {
	Schema string           `json:"schema"`
	Date   string           `json:"date"`
	CPU    string           `json:"cpu,omitempty"`
	GoEnv  string           `json:"go,omitempty"`
	Phases map[string]Phase `json:"phases"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  benchgate record  -out BENCH_<date>.json [-phase post] [-note s] [bench.txt]
  benchgate compare -baseline BENCH_<date>.json [-phase post]
                    [-match regexp] [-ns-tol 1.5] [-alloc-tol 1.1]
                    [-bytes-tol 1.2] [bench.txt]
`)
	os.Exit(2)
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "", "JSON file to create or merge into (required)")
	phase := fs.String("phase", "post", "phase label to store the results under")
	note := fs.String("note", "", "free-form note stored with the phase")
	fs.Parse(args)
	if *out == "" {
		usage()
	}
	results, cpu, goEnv := parseBench(openInput(fs.Arg(0)))
	if len(results) == 0 {
		fatalf("no benchmark lines found in input")
	}

	f := File{Schema: "pdpasim-bench/1", Phases: map[string]Phase{}}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			fatalf("existing %s is not valid: %v", *out, err)
		}
	}
	if f.Date == "" {
		f.Date = time.Now().UTC().Format("2006-01-02")
	}
	if cpu != "" {
		f.CPU = cpu
	}
	if goEnv != "" {
		f.GoEnv = goEnv
	}
	if f.Phases == nil {
		f.Phases = map[string]Phase{}
	}
	f.Phases[*phase] = Phase{Note: *note, Benchmarks: results}

	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("recorded %d benchmarks into %s (phase %q)\n", len(results), *out, *phase)
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	baseline := fs.String("baseline", "", "baseline BENCH_<date>.json (required)")
	phase := fs.String("phase", "post", "baseline phase to compare against")
	match := fs.String("match", "^(SingleRunPDPA|SingleRunIRIX|Sweep(/|$))", "regexp of benchmarks to gate")
	nsTol := fs.Float64("ns-tol", 1.5, "fail when ns/op exceeds baseline by this factor")
	allocTol := fs.Float64("alloc-tol", 1.1, "fail when allocs/op exceeds baseline by this factor")
	bytesTol := fs.Float64("bytes-tol", 1.2, "fail when B/op exceeds baseline by this factor")
	fs.Parse(args)
	if *baseline == "" {
		usage()
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fatalf("bad -match: %v", err)
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fatalf("%v", err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		fatalf("parse %s: %v", *baseline, err)
	}
	base, ok := f.Phases[*phase]
	if !ok {
		fatalf("%s has no phase %q (has: %s)", *baseline, *phase, strings.Join(phaseNames(f), ", "))
	}
	cur, _, _ := parseBench(openInput(fs.Arg(0)))
	if len(cur) == 0 {
		fatalf("no benchmark lines found in input")
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatalf("no current benchmark matches -match %q", *match)
	}

	failed := false
	fmt.Printf("%-28s %14s %14s %8s   %s\n", "benchmark", "base", "current", "ratio", "gate")
	for _, name := range names {
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("%-28s %14s %14s %8s   new (not in baseline)\n", name, "-",
				fmtNs(cur[name].NsPerOp), "-")
			continue
		}
		c := cur[name]
		verdict := "ok"
		if nsRatio := c.NsPerOp / b.NsPerOp; nsRatio > *nsTol {
			verdict = fmt.Sprintf("FAIL ns/op %.2fx > %.2fx", nsRatio, *nsTol)
			failed = true
		}
		if b.AllocsPerOp > 0 {
			if allocRatio := c.AllocsPerOp / b.AllocsPerOp; allocRatio > *allocTol {
				verdict = fmt.Sprintf("FAIL allocs/op %.0f vs %.0f (%.2fx > %.2fx)",
					c.AllocsPerOp, b.AllocsPerOp, allocRatio, *allocTol)
				failed = true
			}
		}
		if b.BytesPerOp > 0 {
			if bytesRatio := c.BytesPerOp / b.BytesPerOp; bytesRatio > *bytesTol {
				verdict = fmt.Sprintf("FAIL B/op %.0f vs %.0f (%.2fx > %.2fx)",
					c.BytesPerOp, b.BytesPerOp, bytesRatio, *bytesTol)
				failed = true
			}
		}
		fmt.Printf("%-28s %14s %14s %7.2fx   %s (allocs %.0f→%.0f)\n",
			name, fmtNs(b.NsPerOp), fmtNs(c.NsPerOp), c.NsPerOp/b.NsPerOp, verdict,
			b.AllocsPerOp, c.AllocsPerOp)
	}
	if failed {
		fmt.Println("\nbenchgate: REGRESSION against", *baseline)
		os.Exit(1)
	}
	fmt.Println("\nbenchgate: no regression against", *baseline)
}

func phaseNames(f File) []string {
	var out []string
	for k := range f.Phases {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func openInput(path string) io.Reader {
	if path == "" || path == "-" {
		return os.Stdin
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	return f
}

// The name and each unit are matched independently so custom b.ReportMetric
// columns (e.g. "1051636 jobs") anywhere in the line don't detach the
// -benchmem columns that follow them.
var (
	benchName   = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+\S+ ns/op`)
	benchNs     = regexp.MustCompile(`\s(\S+) ns/op`)
	benchBytes  = regexp.MustCompile(`\s(\S+) B/op`)
	benchAllocs = regexp.MustCompile(`\s(\S+) allocs/op`)
)

// parseBench reads `go test -bench` output and aggregates repeated runs of
// each benchmark: median ns/op (robust to a noisy sample), max B/op and
// allocs/op (deterministic; max catches a flaky extra allocation).
func parseBench(r io.Reader) (map[string]Result, string, string) {
	raw, err := io.ReadAll(r)
	if err != nil {
		fatalf("read input: %v", err)
	}
	type samples struct{ ns, bytes, allocs []float64 }
	acc := map[string]*samples{}
	var cpu, goos, goarch string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if v, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(v)
			continue
		}
		if v, ok := strings.CutPrefix(line, "goos:"); ok {
			goos = strings.TrimSpace(v)
			continue
		}
		if v, ok := strings.CutPrefix(line, "goarch:"); ok {
			goarch = strings.TrimSpace(v)
			continue
		}
		mm := benchName.FindStringSubmatch(line)
		if mm == nil {
			continue
		}
		name := strings.TrimPrefix(mm[1], "Benchmark")
		s := acc[name]
		if s == nil {
			s = &samples{}
			acc[name] = s
		}
		s.ns = append(s.ns, parseF(benchNs.FindStringSubmatch(line)[1]))
		if m := benchBytes.FindStringSubmatch(line); m != nil {
			s.bytes = append(s.bytes, parseF(m[1]))
		}
		if m := benchAllocs.FindStringSubmatch(line); m != nil {
			s.allocs = append(s.allocs, parseF(m[1]))
		}
	}
	out := map[string]Result{}
	for name, s := range acc {
		out[name] = Result{
			NsPerOp:     median(s.ns),
			BytesPerOp:  maxOf(s.bytes),
			AllocsPerOp: maxOf(s.allocs),
			Samples:     len(s.ns),
		}
	}
	goEnv := ""
	if goos != "" || goarch != "" {
		goEnv = goos + "/" + goarch
	}
	return out, cpu, goEnv
}

func parseF(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		fatalf("bad number %q: %v", s, err)
	}
	return v
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func maxOf(v []float64) float64 {
	out := 0.0
	for _, x := range v {
		if x > out {
			out = x
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
