package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pdpasim
cpu: Intel(R) Xeon(R) Platinum 8481C CPU @ 2.70GHz
BenchmarkSingleRunPDPA-2   	      79	  24639637 ns/op	 1282843 B/op	    4784 allocs/op
BenchmarkSingleRunPDPA-2   	      51	  21619448 ns/op	 1282865 B/op	    4784 allocs/op
BenchmarkSingleRunPDPA-2   	      48	  28622553 ns/op	 1282948 B/op	    4784 allocs/op
BenchmarkSingleRunIRIX-2   	      28	  37372468 ns/op	  769923 B/op	    1294 allocs/op
BenchmarkSweep/workers=2-2 	       4	 293192625 ns/op
BenchmarkSweepManyJobs-2   	       1	30937174788 ns/op	   1051636 jobs	1895701472 B/op	 1056122 allocs/op
PASS
ok  	pdpasim	15.405s
`

func TestParseBench(t *testing.T) {
	results, cpu, goEnv := parseBench(strings.NewReader(sampleOutput))
	if cpu == "" || !strings.Contains(cpu, "Xeon") {
		t.Errorf("cpu = %q, want Xeon line", cpu)
	}
	if goEnv != "linux/amd64" {
		t.Errorf("goEnv = %q", goEnv)
	}
	pdpa, ok := results["SingleRunPDPA"]
	if !ok {
		t.Fatalf("SingleRunPDPA missing: %v", results)
	}
	if pdpa.Samples != 3 {
		t.Errorf("samples = %d, want 3", pdpa.Samples)
	}
	// Median of {24639637, 21619448, 28622553}.
	if pdpa.NsPerOp != 24639637 {
		t.Errorf("ns/op = %v, want median 24639637", pdpa.NsPerOp)
	}
	// Max B/op across samples.
	if pdpa.BytesPerOp != 1282948 {
		t.Errorf("B/op = %v, want max 1282948", pdpa.BytesPerOp)
	}
	if pdpa.AllocsPerOp != 4784 {
		t.Errorf("allocs/op = %v", pdpa.AllocsPerOp)
	}
	// Sub-benchmarks keep their full name; no -benchmem columns is fine.
	sweep, ok := results["Sweep/workers=2"]
	if !ok {
		t.Fatalf("Sweep/workers=2 missing: %v", results)
	}
	if sweep.NsPerOp != 293192625 || sweep.AllocsPerOp != 0 {
		t.Errorf("sweep = %+v", sweep)
	}
	if _, ok := results["SingleRunIRIX"]; !ok {
		t.Errorf("SingleRunIRIX missing")
	}
	// A custom b.ReportMetric column between ns/op and B/op must not detach
	// the -benchmem columns.
	many, ok := results["SweepManyJobs"]
	if !ok {
		t.Fatalf("SweepManyJobs missing: %v", results)
	}
	if many.BytesPerOp != 1895701472 || many.AllocsPerOp != 1056122 {
		t.Errorf("many = %+v, want B/op and allocs/op despite custom metric", many)
	}
}

func TestMedianEven(t *testing.T) {
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %v", got)
	}
}
