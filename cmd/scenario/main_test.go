package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const passing = `
name: tiny
defaults:
  workload: {mix: w1, load: 0.5, ncpu: 32, window_s: 60, seed: 3}
  options: {policy: equip}
events:
  - submit: {name: a}
  - wait: {run: a, state: done}
assertions:
  - state: {run: a, is: done}
`

const failing = `
name: wrong
defaults:
  workload: {mix: w1, load: 0.5, ncpu: 32, window_s: 60, seed: 3}
  options: {policy: equip}
events:
  - submit: {name: a}
  - wait: {run: a, state: done}
assertions:
  - state: {run: a, is: failed}
`

func TestRunExitCodes(t *testing.T) {
	pass := write(t, "pass.yaml", passing)
	fail := write(t, "fail.yaml", failing)
	bad := write(t, "bad.yaml", "name: [unclosed")

	var out, errOut bytes.Buffer
	if code := run([]string{"run", pass}, &out, &errOut); code != 0 {
		t.Fatalf("passing scenario exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "scenario tiny: PASS") {
		t.Fatalf("text report missing verdict:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"run", fail}, &out, &errOut); code != 1 {
		t.Fatalf("failing scenario exit %d, want 1", code)
	}

	errOut.Reset()
	if code := run([]string{"run", bad}, &out, &errOut); code != 2 {
		t.Fatalf("malformed scenario exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "bad.yaml") {
		t.Fatalf("stderr %q does not name the bad file", errOut.String())
	}

	if code := run([]string{"frobnicate"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown command exit %d, want 2", code)
	}
}

func TestRunJSONDeterministic(t *testing.T) {
	pass := write(t, "pass.yaml", passing)
	render := func() string {
		var out, errOut bytes.Buffer
		if code := run([]string{"run", "-json", "-seed", "9", pass}, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr %q", code, errOut.String())
		}
		return out.String()
	}
	first := render()
	if !strings.Contains(first, `"pass": true`) {
		t.Fatalf("JSON report:\n%s", first)
	}
	if second := render(); second != first {
		t.Fatalf("JSON reports diverge:\n%s\n---\n%s", first, second)
	}
}

func TestRunMultiFileJSON(t *testing.T) {
	pass := write(t, "pass.yaml", passing)
	fail := write(t, "fail.yaml", failing)
	var out, errOut bytes.Buffer
	if code := run([]string{"run", "-json", pass, fail}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	s := out.String()
	if !strings.Contains(s, `"pass": false`) || !strings.Contains(s, `"scenarios"`) {
		t.Fatalf("multi-file JSON:\n%s", s)
	}
}

func TestValidate(t *testing.T) {
	pass := write(t, "pass.yaml", passing)
	var out, errOut bytes.Buffer
	if code := run([]string{"validate", pass}, &out, &errOut); code != 0 {
		t.Fatalf("validate exit %d, stderr %q", code, errOut.String())
	}
	bad := write(t, "bad.yaml", "events: {not: a, list: here}")
	if code := run([]string{"validate", bad}, &out, &errOut); code != 2 {
		t.Fatalf("validate bad exit %d, want 2", code)
	}
}

func TestOutputFile(t *testing.T) {
	pass := write(t, "pass.yaml", passing)
	dst := filepath.Join(t.TempDir(), "report.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"run", "-json", "-o", dst, pass}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("stdout not empty with -o: %q", out.String())
	}
	b, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"scenario": "tiny"`) {
		t.Fatalf("report file:\n%s", b)
	}
}
