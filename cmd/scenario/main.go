// Command scenario runs YAML stress/chaos scenarios against an in-process
// runqueue stack and reports pass/fail.
//
// Usage:
//
//	scenario run [-seed N] [-json] [-o FILE] scenario.yaml...
//	scenario validate scenario.yaml...
//
// run executes each scenario deterministically — the same file at the same
// seed renders a byte-identical JSON report — and exits 0 when every
// scenario passes, 1 when any fails, 2 on malformed input or usage errors.
// validate only parses and schema-checks the files.
//
// -seed overrides each scenario's master seed (the fault injector and the
// derived seeds of generated arrival workloads); workload seeds pinned in
// the file are never touched, so assertions tied to a pinned workload
// survive the override.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pdpasim/internal/scenario"
)

const usage = `usage:
  scenario run [-seed N] [-json] [-o FILE] scenario.yaml...
  scenario validate scenario.yaml...

run executes scenarios against an in-process run queue and reports
pass/fail; validate only parses and schema-checks them.

exit status: 0 all scenarios pass, 1 a scenario failed, 2 bad input.
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// multiReport is the JSON wrapper when several scenarios run in one
// invocation.
type multiReport struct {
	Pass      bool               `json:"pass"`
	Scenarios []*scenario.Report `json:"scenarios"`
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "validate":
		return cmdValidate(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return 0
	}
	fmt.Fprintf(stderr, "scenario: unknown command %q\n%s", args[0], usage)
	return 2
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "override each scenario's master seed")
	asJSON := fs.Bool("json", false, "render the report as JSON instead of text")
	outPath := fs.String("o", "", "write the report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintf(stderr, "scenario run: no scenario files given\n")
		return 2
	}

	scenarios, code := parseAll(files, stderr)
	if code != 0 {
		return code
	}
	var reports []*scenario.Report
	pass := true
	for _, s := range scenarios {
		if seedSet {
			s.Seed = *seed
		}
		rep := scenario.Run(s)
		if !rep.Pass {
			pass = false
		}
		reports = append(reports, rep)
	}

	out := io.Writer(stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "scenario run: %v\n", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	if err := render(out, reports, pass, *asJSON); err != nil {
		fmt.Fprintf(stderr, "scenario run: %v\n", err)
		return 2
	}
	if !pass {
		return 1
	}
	return 0
}

func render(out io.Writer, reports []*scenario.Report, pass, asJSON bool) error {
	if asJSON {
		if len(reports) == 1 {
			return reports[0].WriteJSON(out)
		}
		b, err := json.MarshalIndent(multiReport{Pass: pass, Scenarios: reports}, "", "  ")
		if err != nil {
			return err
		}
		_, err = out.Write(append(b, '\n'))
		return err
	}
	for i, rep := range reports {
		if i > 0 {
			if _, err := fmt.Fprintln(out); err != nil {
				return err
			}
		}
		if err := rep.WriteText(out); err != nil {
			return err
		}
	}
	if len(reports) > 1 {
		verdict := "FAIL"
		if pass {
			verdict = "PASS"
		}
		if _, err := fmt.Fprintf(out, "\n%d scenarios: %s\n", len(reports), verdict); err != nil {
			return err
		}
	}
	return nil
}

func cmdValidate(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintf(stderr, "scenario validate: no scenario files given\n")
		return 2
	}
	if _, code := parseAll(files, stderr); code != 0 {
		return code
	}
	fmt.Fprintf(stdout, "%d scenario(s) valid\n", len(files))
	return 0
}

func parseAll(files []string, stderr io.Writer) ([]*scenario.Scenario, int) {
	var out []*scenario.Scenario
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(stderr, "scenario: %v\n", err)
			return nil, 2
		}
		s, err := scenario.Parse(src)
		if err != nil {
			fmt.Fprintf(stderr, "scenario: %s: %v\n", file, err)
			return nil, 2
		}
		out = append(out, s)
	}
	return out, 0
}
