// Command wlstat analyzes a Standard Workload Format trace file: job counts
// and requests per application class, interarrival statistics, and the
// estimated machine demand — useful when calibrating or inspecting traces
// before running them (the paper's methodology fixes one trace per
// load level and replays it under every policy).
//
// Usage:
//
//	wlgen -mix w3 -load 1.0 | wlstat
//	wlstat -f w3-100.swf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pdpasim/internal/app"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
	"pdpasim/internal/workload"
)

func main() {
	file := flag.String("f", "", "SWF trace file (default stdin)")
	window := flag.Float64("window", 300, "submission window in seconds, for the load estimate")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	w, err := workload.ParseSWF(in)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload %q: %d jobs, machine %d CPUs, calibrated load %.2f\n\n",
		w.Name, len(w.Jobs), w.NCPU, w.TargetLoad)

	// Per-class composition.
	fmt.Printf("%-10s %6s %10s %14s %16s\n", "class", "jobs", "requests", "serial work", "held demand")
	for _, c := range app.AllClasses() {
		var n int
		reqs := map[int]int{}
		for _, j := range w.Jobs {
			if j.Class == c {
				n++
				reqs[j.Request]++
			}
		}
		if n == 0 {
			continue
		}
		prof := app.ProfileFor(c)
		work := float64(n) * prof.TotalSerialWork().Seconds()
		held := 0.0
		for req, cnt := range reqs {
			held += float64(cnt) * float64(req) * prof.DedicatedTime(req).Seconds()
		}
		fmt.Printf("%-10s %6d %10s %12.0f cs %14.0f cs\n",
			c, n, requestSet(reqs), work, held)
	}

	// Interarrival statistics.
	var gaps stats.Summary
	for i := 1; i < len(w.Jobs); i++ {
		gaps.Add((w.Jobs[i].Submit - w.Jobs[i-1].Submit).Seconds())
	}
	fmt.Printf("\ninterarrival: mean %.2fs, cv %.2f, max %.2fs\n",
		gaps.Mean(), gaps.CoefficientOfVariation(), gaps.Max())

	// Realized load.
	win := sim.FromSeconds(*window)
	fmt.Printf("realized load over %.0fs window: %.2f (work) / %.2f (held at requested sizes)\n",
		*window, w.EstimatedLoad(win),
		w.Demand(nil)/(float64(w.NCPU)*win.Seconds()))
}

// requestSet formats the distinct requests seen, e.g. "30" or "2,30".
func requestSet(reqs map[int]int) string {
	out := ""
	for req := 1; req <= 1024; req++ {
		if reqs[req] > 0 {
			if out != "" {
				out += ","
			}
			out += fmt.Sprint(req)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wlstat:", err)
	os.Exit(1)
}
