// Command clustersim runs a workload on a cluster of SMP nodes — the
// paper's future-work setting (Section 6) — with PDPA on every node and a
// configurable placement strategy at the front end.
//
// Usage:
//
//	clustersim -mix w4 -load 0.8 -nodes 4 -cpus 16 -placement coordinated
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pdpasim/internal/app"
	"pdpasim/internal/cluster"
	"pdpasim/internal/sim"
	"pdpasim/internal/workload"
)

func main() {
	var (
		mix       = flag.String("mix", "w4", "workload mix: w1..w4")
		load      = flag.Float64("load", 0.8, "demand fraction of the total cluster capacity")
		nodes     = flag.Int("nodes", 4, "number of SMP nodes")
		cpus      = flag.Int("cpus", 16, "processors per node")
		placement = flag.String("placement", "coordinated", "round_robin, least_loaded, or coordinated")
		seed      = flag.Int64("seed", 1, "workload and noise seed")
	)
	flag.Parse()

	m, err := workload.MixByName(*mix)
	if err != nil {
		fatal(err)
	}
	total := *nodes * *cpus
	w, err := workload.Generate(workload.GenConfig{
		Mix: m, Load: *load, NCPU: total, Window: 300 * sim.Second, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	res, err := cluster.Run(cluster.Config{
		Nodes: *nodes, CPUsPerNode: *cpus, Workload: w,
		Placement: cluster.Placement(*placement), Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%d jobs on %d x %d CPUs, placement %s: makespan %.0fs, imbalance %.2f\n",
		len(res.Jobs), *nodes, *cpus, res.Placement, res.Makespan.Seconds(), res.Imbalance())
	resp := res.ResponseByClass()
	classes := make([]app.Class, 0, len(resp))
	for c := range resp {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		fmt.Printf("  %-8s response %7.1fs\n", c, resp[c])
	}
	fmt.Println("per-node jobs:", res.PerNodeJobs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(1)
}
