// Command traceview runs a workload under a policy and renders the per-CPU
// execution timeline as ASCII art — the textual counterpart of the paper's
// Paraver views (Fig. 5). Comparing the same workload under -policy irix and
// -policy pdpa shows the stability difference at a glance.
//
// Usage:
//
//	traceview -mix w1 -load 1.0 -policy irix -to 120
//	traceview -mix w1 -load 1.0 -policy pdpa -to 120
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pdpasim"
)

func main() {
	var (
		mix    = flag.String("mix", "w1", "workload mix: w1..w4")
		load   = flag.Float64("load", 1.0, "demand fraction")
		policy = flag.String("policy", "pdpa", "irix, equip, equal_eff, or pdpa")
		seed   = flag.Int64("seed", 1, "workload seed")
		width  = flag.Int("width", 100, "columns in the rendered view")
		from   = flag.Float64("from", 0, "window start (seconds)")
		to     = flag.Float64("to", 0, "window end (seconds, 0 = whole run)")
	)
	flag.Parse()

	pol, err := pdpasim.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
	out, err := pdpasim.RunContext(context.Background(),
		pdpasim.WorkloadSpec{Mix: *mix, Load: *load, Seed: *seed},
		pdpasim.Options{Policy: pol, Seed: *seed, KeepTrace: true},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
	fmt.Printf("%s on %s: %d migrations, avg burst %.0f ms\n\n",
		out.Policy, out.Workload, out.Migrations, out.AvgBurst.Seconds()*1000)
	fmt.Print(out.RenderTrace(*width,
		time.Duration(*from*float64(time.Second)),
		time.Duration(*to*float64(time.Second))))
}
