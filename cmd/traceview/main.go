// Command traceview runs a workload under a policy and renders the per-CPU
// execution timeline as ASCII art — the textual counterpart of the paper's
// Paraver views (Fig. 5). Comparing the same workload under -policy irix and
// -policy pdpa shows the stability difference at a glance.
//
// With -decisions it also prints the run's decision trace — every policy
// state transition with its measured efficiency, every admission decision
// with its reason, and every reallocation — so the timeline's shape can be
// read next to the decisions that produced it.
//
// Usage:
//
//	traceview -mix w1 -load 1.0 -policy irix -to 120
//	traceview -mix w1 -load 1.0 -policy pdpa -to 120
//	traceview -mix w1 -policy pdpa -decisions
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pdpasim"
)

func main() {
	var (
		mix       = flag.String("mix", "w1", "workload mix: w1..w4")
		load      = flag.Float64("load", 1.0, "demand fraction")
		policy    = flag.String("policy", "pdpa", "irix, equip, equal_eff, or pdpa")
		seed      = flag.Int64("seed", 1, "workload seed")
		width     = flag.Int("width", 100, "columns in the rendered view")
		from      = flag.Float64("from", 0, "window start (seconds)")
		to        = flag.Float64("to", 0, "window end (seconds, 0 = whole run)")
		decisions = flag.Bool("decisions", false, "also print the decision trace (policy transitions, admissions, reallocations)")
	)
	flag.Parse()

	pol, err := pdpasim.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
	opts := pdpasim.Options{Policy: pol, Seed: *seed, KeepTrace: true}
	if *decisions {
		opts.DecisionTrace = pdpasim.DecisionTraceUnlimited
	}
	out, err := pdpasim.RunContext(context.Background(),
		pdpasim.WorkloadSpec{Mix: *mix, Load: *load, Seed: *seed},
		opts,
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
	fmt.Printf("%s on %s: %d migrations, avg burst %.0f ms\n\n",
		out.Policy, out.Workload, out.Migrations, out.AvgBurst.Seconds()*1000)
	fmt.Print(out.RenderTrace(*width,
		time.Duration(*from*float64(time.Second)),
		time.Duration(*to*float64(time.Second))))
	if *decisions {
		fmt.Printf("\ndecision trace (%d events):\n", out.DecisionTrace().Len())
		if err := out.DecisionTrace().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "traceview:", err)
			os.Exit(1)
		}
	}
}
