// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments               # run everything (the EXPERIMENTS.md dataset)
//	experiments -run fig4     # one artifact
//	experiments -quick        # reduced seeds/loads for a fast look
//	experiments -list         # what is available
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pdpasim"
)

func main() {
	var (
		run       = flag.String("run", "", "run only this experiment id (fig3..fig10, tab1..tab4, abl1..abl4, ext1..ext6)")
		quick     = flag.Bool("quick", false, "reduced seeds and loads")
		list      = flag.Bool("list", false, "list available experiments")
		svgDir    = flag.String("svg", "", "also render the figures as SVG charts into this directory")
		scorecard = flag.Bool("scorecard", false, "verify every encoded paper claim and print pass/fail")
	)
	flag.Parse()

	if *scorecard {
		fmt.Print(pdpasim.Scorecard(pdpasim.ExperimentOptions{Quick: *quick}))
		return
	}

	if *list {
		for _, e := range pdpasim.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	if *svgDir != "" {
		n, err := pdpasim.RenderFigureSVGs(*svgDir, pdpasim.ExperimentOptions{Quick: *quick})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d SVG charts to %s\n", n, *svgDir)
		if *run == "" {
			return
		}
	}

	opts := pdpasim.ExperimentOptions{Quick: *quick}
	ids := []string{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	} else {
		for _, e := range pdpasim.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		t0 := time.Now()
		text, err := pdpasim.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(text)
		fmt.Printf("(%s regenerated in %.1fs)\n\n", id, time.Since(t0).Seconds())
	}
}
