// Command experiments regenerates the paper's tables and figures, and runs
// ad-hoc policy × mix × load × seed grids on the parallel sweep engine.
//
// Usage:
//
//	experiments                    # run everything (the EXPERIMENTS.md dataset)
//	experiments -run fig4          # one artifact
//	experiments -quick -workers 4  # reduced seeds/loads, explicit parallelism
//	experiments -list              # what is available
//
//	experiments -sweep -policies irix,equip,equal_eff,pdpa -mixes w1,w2 \
//	    -loads 0.6,1.0 -seeds 1,2,3 -format csv
//
// Sweep mode fans the grid across a bounded worker pool (every policy shares
// one generated workload per mix/load/seed) and emits per-cell aggregates —
// mean, stddev, and 95% confidence intervals over the seed replicates — as a
// table, CSV, or JSON. The output is byte-identical at any -workers setting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pdpasim"
)

func main() {
	var (
		run       = flag.String("run", "", "run only this experiment id (fig3..fig10, tab1..tab4, abl1..abl4, ext1..ext6)")
		quick     = flag.Bool("quick", false, "reduced seeds and loads")
		list      = flag.Bool("list", false, "list available experiments")
		svgDir    = flag.String("svg", "", "also render the figures as SVG charts into this directory")
		scorecard = flag.Bool("scorecard", false, "verify every encoded paper claim and print pass/fail")
		workers   = flag.Int("workers", 0, "worker pool size for grids (0 = one per CPU)")

		sweepMode = flag.Bool("sweep", false, "run a policy/mix/load/seed grid instead of a named artifact")
		policies  = flag.String("policies", "irix,equip,equal_eff,pdpa", "sweep: comma-separated policies")
		mixes     = flag.String("mixes", "w1", "sweep: comma-separated workload mixes (w1..w4)")
		loads     = flag.String("loads", "1.0", "sweep: comma-separated load levels")
		seeds     = flag.String("seeds", "1,2,3", "sweep: comma-separated workload seeds")
		ncpu      = flag.Int("ncpu", 60, "sweep: machine size")
		window    = flag.Duration("window", 300*time.Second, "sweep: submission window")
		format    = flag.String("format", "table", "sweep output format: table, csv, or json")
		out       = flag.String("o", "", "sweep: write output to this file instead of stdout")
		progress  = flag.Bool("progress", false, "sweep: report per-run completion on stderr")
	)
	flag.Parse()

	if *sweepMode {
		if err := runSweep(*policies, *mixes, *loads, *seeds, *ncpu, *window, *workers, *format, *out, *progress); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	if *scorecard {
		fmt.Print(pdpasim.Scorecard(pdpasim.ExperimentOptions{Quick: *quick, Workers: *workers}))
		return
	}

	if *list {
		for _, e := range pdpasim.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := pdpasim.ExperimentOptions{Quick: *quick, Workers: *workers}

	if *svgDir != "" {
		n, err := pdpasim.RenderFigureSVGs(*svgDir, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d SVG charts to %s\n", n, *svgDir)
		if *run == "" {
			return
		}
	}

	ids := []string{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	} else {
		for _, e := range pdpasim.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		t0 := time.Now()
		text, err := pdpasim.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(text)
		fmt.Printf("(%s regenerated in %.1fs)\n\n", id, time.Since(t0).Seconds())
	}
}

func runSweep(policies, mixes, loads, seeds string, ncpu int, window time.Duration, workers int, format, out string, progress bool) error {
	spec := pdpasim.SweepSpec{
		Mixes:   splitList(mixes),
		NCPU:    ncpu,
		Window:  window,
		Workers: workers,
	}
	for _, s := range splitList(policies) {
		p, err := pdpasim.ParsePolicy(s)
		if err != nil {
			return err
		}
		spec.Policies = append(spec.Policies, p)
	}
	for _, s := range splitList(loads) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("bad load %q: %v", s, err)
		}
		spec.Loads = append(spec.Loads, v)
	}
	for _, s := range splitList(seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %v", s, err)
		}
		spec.Seeds = append(spec.Seeds, v)
	}
	if progress {
		spec.Observer = pdpasim.ObserverFunc(func(e pdpasim.TraceEvent) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", e.Done, e.Total, e.ID)
		})
	}

	t0 := time.Now()
	res, err := pdpasim.Sweep(context.Background(), spec)
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "csv":
		if err := res.WriteCSV(w); err != nil {
			return err
		}
	case "json":
		if err := res.WriteJSON(w); err != nil {
			return err
		}
	case "table":
		if _, err := io.WriteString(w, res.Summary()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want table, csv, or json)", format)
	}
	fmt.Fprintf(os.Stderr, "(%d runs over %d cells in %.1fs)\n", len(res.Runs), len(res.Cells), elapsed.Seconds())
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
