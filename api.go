package pdpasim

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/metrics"
	"pdpasim/internal/obs"
	"pdpasim/internal/sim"
	"pdpasim/internal/system"
	"pdpasim/internal/trace"
	"pdpasim/internal/workload"
)

// Policy selects a scheduling regime.
type Policy string

// The four scheduling regimes of the paper's evaluation.
const (
	// PDPA is the paper's contribution: performance-driven space sharing
	// with a coordinated multiprogramming level.
	PDPA Policy = "pdpa"
	// Equipartition divides the machine equally among running jobs,
	// reallocating at arrivals and completions.
	Equipartition Policy = "equip"
	// EqualEfficiency allocates by extrapolated efficiency on every
	// performance report.
	EqualEfficiency Policy = "equal_eff"
	// IRIX models the native time-sharing scheduler with the SGI-MP
	// runtime.
	IRIX Policy = "irix"
	// Dynamic is McCann/Vaswani/Zahorjan's eager-reallocation policy, an
	// extended baseline from the related-work literature.
	Dynamic Policy = "dynamic"
	// Gang is classic gang scheduling (Ousterhout matrix), an extended
	// baseline.
	Gang Policy = "gang"
	// AdaptivePDPA is PDPA with a load-driven target efficiency — the
	// paper's sketched variant (Section 4.1).
	AdaptivePDPA Policy = "pdpa_adaptive"
)

// Policies lists the paper's four regimes in presentation order.
func Policies() []Policy { return []Policy{IRIX, Equipartition, EqualEfficiency, PDPA} }

// ExtendedPolicies adds the related-work baselines this repository also
// implements (gang scheduling and Dynamic).
func ExtendedPolicies() []Policy {
	return []Policy{IRIX, Gang, Equipartition, EqualEfficiency, Dynamic, PDPA}
}

// Validate reports whether p names a known scheduling regime. Both cmd/
// pdpasim and the pdpad daemon reject specs through this single check.
func (p Policy) Validate() error {
	switch p {
	case PDPA, Equipartition, EqualEfficiency, IRIX, Dynamic, Gang, AdaptivePDPA:
		return nil
	}
	return fmt.Errorf("pdpasim: unknown policy %q (valid: irix, gang, equip, equal_eff, dynamic, pdpa, pdpa_adaptive)", string(p))
}

// ParsePolicy converts a policy name — as it appears in flags, JSON
// payloads, and results tables — to a Policy. It is the single entry point
// through which external policy names enter the system: flag parsing, the
// daemon API, and sweep specs all round-trip through it. Names are matched
// case-insensitively and with surrounding whitespace ignored.
func ParsePolicy(s string) (Policy, error) {
	p := Policy(strings.ToLower(strings.TrimSpace(s)))
	if err := p.Validate(); err != nil {
		return "", err
	}
	return p, nil
}

// String returns the canonical wire name of the policy ("pdpa", "equip", …),
// implementing fmt.Stringer.
func (p Policy) String() string { return string(p) }

// MarshalText implements encoding.TextMarshaler; policies serialize as their
// canonical wire name. Marshaling an unknown policy is an error, so invalid
// values cannot leak into JSON output.
func (p Policy) MarshalText() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return []byte(p), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParsePolicy, so a
// Policy field decoded from JSON (for example by the pdpad daemon) is
// validated at decode time.
func (p *Policy) UnmarshalText(text []byte) error {
	parsed, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// PDPAParams mirrors the paper's policy parameters (Section 4.2).
type PDPAParams struct {
	// TargetEff is the efficiency allocated processors must sustain (0.7).
	TargetEff float64
	// HighEff is the "very good" threshold (0.9).
	HighEff float64
	// Step is the per-transition allocation step (4).
	Step int
	// BaseMPL is the default multiprogramming level (4).
	BaseMPL int
	// MaxStableTransitions bounds STABLE exits (ping-pong guard).
	MaxStableTransitions int
}

// DefaultPDPAParams returns the paper's parameter values.
func DefaultPDPAParams() PDPAParams {
	p := core.DefaultParams()
	return PDPAParams{
		TargetEff: p.TargetEff, HighEff: p.HighEff, Step: p.Step,
		BaseMPL: p.BaseMPL, MaxStableTransitions: p.MaxStableTransitions,
	}
}

func (p PDPAParams) internal() core.Params {
	return core.Params{
		TargetEff: p.TargetEff, HighEff: p.HighEff, Step: p.Step,
		BaseMPL: p.BaseMPL, MaxStableTransitions: p.MaxStableTransitions,
	}
}

// WorkloadSpec describes a workload to generate: one of the paper's four
// mixes, calibrated to a demand level.
type WorkloadSpec struct {
	// Mix is "w1", "w2", "w3", or "w4" (Table 1).
	Mix string
	// Load is the estimated processor demand fraction (0.6, 0.8, 1.0).
	// Defaults to 1.0.
	Load float64
	// NCPU is the machine size. Defaults to 60 (the paper's setup).
	NCPU int
	// Window is the submission window. Defaults to 300 s.
	Window time.Duration
	// Seed drives the arrival process. The same spec always yields the same
	// trace.
	Seed int64
	// UniformRequest, when positive, forces every job's processor request
	// to that value — the paper's "not tuned" experiments use 30.
	UniformRequest int
}

// Validate checks the spec without generating the workload: the mix must be
// known and every numeric field non-negative. It is the validation path
// shared by cmd/pdpasim flag checking and the pdpad daemon's request
// admission.
func (s WorkloadSpec) Validate() error {
	if _, err := workload.MixByName(s.Mix); err != nil {
		return err
	}
	switch {
	case s.Load < 0:
		return fmt.Errorf("pdpasim: negative load %v", s.Load)
	case s.NCPU < 0:
		return fmt.Errorf("pdpasim: negative machine size %d", s.NCPU)
	case s.Window < 0:
		return fmt.Errorf("pdpasim: negative submission window %v", s.Window)
	case s.UniformRequest < 0:
		return fmt.Errorf("pdpasim: negative uniform request %d", s.UniformRequest)
	}
	return nil
}

func (s WorkloadSpec) build() (*workload.Workload, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	mix, err := workload.MixByName(s.Mix)
	if err != nil {
		return nil, err
	}
	load := s.Load
	if load == 0 {
		load = 1.0
	}
	ncpu := s.NCPU
	if ncpu == 0 {
		ncpu = 60
	}
	window := sim.FromSeconds(s.Window.Seconds())
	if s.Window == 0 {
		window = 300 * sim.Second
	}
	w, err := workload.Generate(workload.GenConfig{
		Mix: mix, Load: load, NCPU: ncpu, Window: window, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	if s.UniformRequest > 0 {
		w = w.WithUniformRequest(s.UniformRequest)
	}
	return w, nil
}

// WriteSWF generates the workload and writes it as a Standard Workload
// Format trace, the format the paper's trace files use.
func (s WorkloadSpec) WriteSWF(out io.Writer) error {
	w, err := s.build()
	if err != nil {
		return err
	}
	return w.WriteSWF(out)
}

// Options configure a simulation run.
type Options struct {
	// Policy selects the scheduling regime (required).
	Policy Policy
	// PDPA overrides the PDPA parameters (zero value = paper defaults).
	PDPA PDPAParams
	// FixedMPL is the queuing system's fixed multiprogramming level for the
	// non-PDPA regimes (default 4).
	FixedMPL int
	// NoiseSigma is the SelfAnalyzer measurement noise (default 1%;
	// negative disables).
	NoiseSigma float64
	// Seed drives measurement noise.
	Seed int64
	// KeepTrace retains the full execution trace so Outcome.RenderTrace
	// works.
	KeepTrace bool
	// NUMANodeSize groups the machine's CPUs into NUMA nodes of this size
	// (the Origin 2000's node boards); 0 or 1 keeps a flat SMP.
	NUMANodeSize int
	// DecisionTrace enables decision-trace recording: every policy state
	// transition, admission decision, reallocation, and preemption is
	// retained and available from Outcome.DecisionTrace. Zero (the default)
	// disables recording; a positive value caps the retained events (later
	// events are counted as dropped); DecisionTraceUnlimited retains
	// everything. Disabled tracing costs nothing on the simulation hot
	// paths.
	DecisionTrace int
	// Throughput > 1 enables coarse throughput mode: each application fuses
	// up to Throughput undisturbed iterations into one simulation event, so
	// very large workloads process far fewer events. Scheduling decisions
	// are unchanged — any reallocation or penalty collapses the fusion at
	// the exact iteration it lands in — but performance measurements are
	// sampled once per fused span instead of once per iteration, so results
	// are deterministic per seed yet not byte-equal to exact mode. IRIX
	// runs ignore the setting. 0 or 1 keeps exact per-iteration simulation.
	Throughput int
	// Observer, when set, receives every decision-trace event live as the
	// simulation produces it — the streaming counterpart of DecisionTrace,
	// and the same hook Sweep and the pdpad daemon accept. Calls are
	// synchronous and strictly ordered within the run. An Observer alone
	// (DecisionTrace == 0) streams without retaining.
	Observer Observer `json:"-"`
}

// Validate checks the options: the policy must be known, numeric fields
// non-negative, and explicit PDPA parameters self-consistent.
func (o Options) Validate() error {
	if err := o.Policy.Validate(); err != nil {
		return err
	}
	if o.FixedMPL < 0 {
		return fmt.Errorf("pdpasim: negative multiprogramming level %d", o.FixedMPL)
	}
	if o.NUMANodeSize < 0 {
		return fmt.Errorf("pdpasim: negative NUMA node size %d", o.NUMANodeSize)
	}
	if o.DecisionTrace < DecisionTraceUnlimited {
		return fmt.Errorf("pdpasim: invalid decision-trace limit %d", o.DecisionTrace)
	}
	if o.Throughput < 0 {
		return fmt.Errorf("pdpasim: negative throughput stride %d", o.Throughput)
	}
	if (o.Policy == PDPA || o.Policy == AdaptivePDPA) && o.PDPA != (PDPAParams{}) {
		if err := o.PDPA.internal().Validate(); err != nil {
			return err
		}
	}
	return nil
}

// config translates the options into the internal system configuration.
func (o Options) config(w *workload.Workload) system.Config {
	cfg := system.Config{
		Workload:     w,
		Policy:       system.PolicyKind(o.Policy),
		FixedMPL:     o.FixedMPL,
		NoiseSigma:   o.NoiseSigma,
		Seed:         o.Seed,
		KeepBursts:   o.KeepTrace,
		NUMANodeSize: o.NUMANodeSize,
		Throughput:   o.Throughput,
	}
	if (o.Policy == PDPA || o.Policy == AdaptivePDPA) && o.PDPA != (PDPAParams{}) {
		params := o.PDPA.internal()
		cfg.PDPAParams = &params
	}
	return cfg
}

// JobOutcome is the result of one job.
type JobOutcome struct {
	ID        int
	App       string
	Request   int
	Submit    time.Duration // relative to the run start
	Start     time.Duration
	End       time.Duration
	Response  time.Duration
	Execution time.Duration
	// AvgProcessors is the job's time-averaged processor allocation.
	AvgProcessors float64
}

// Outcome is the result of one run.
type Outcome struct {
	Policy   string
	Workload string
	Load     float64
	Jobs     []JobOutcome
	// Makespan is the completion time of the last job.
	Makespan time.Duration
	// MaxMPL and AvgMPL describe the multiprogramming level reached.
	MaxMPL int
	AvgMPL float64
	// Migrations, AvgBurst, BurstsPerCPU, and Utilization are the
	// scheduling-stability statistics of Table 2.
	Migrations   int
	AvgBurst     time.Duration
	BurstsPerCPU float64
	Utilization  float64

	res   *metrics.RunResult
	trace *obs.Trace
}

// DecisionTrace returns the run's recorded decision trace, or nil when the
// run was executed without Options.DecisionTrace (an Observer alone streams
// events but retains none).
func (o *Outcome) DecisionTrace() *DecisionTrace {
	if o.trace == nil || !o.trace.Retains() {
		return nil
	}
	return &DecisionTrace{tr: o.trace}
}

// RunContext generates the workload described by spec and executes it under
// the given options, aborting promptly — mid-simulation — when ctx is
// cancelled or its deadline passes. The returned error then wraps ctx.Err().
// A run that completes is byte-identical to the same run without a context:
// cancellation checks never perturb the event order.
func RunContext(ctx context.Context, spec WorkloadSpec, opts Options) (*Outcome, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	w, err := spec.build()
	if err != nil {
		return nil, err
	}
	cfg := opts.config(w)
	tr := newRunTrace(opts.DecisionTrace, opts.Observer)
	cfg.Trace = tr
	res, err := system.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newOutcome(res)
	out.trace = tr
	return out, nil
}

// RunSWFContext replays a Standard Workload Format trace (as produced by
// WorkloadSpec.WriteSWF, or any SWF v2 input trace using the same field
// conventions) under the given options, with the same cancellation contract
// as RunContext.
func RunSWFContext(ctx context.Context, in io.Reader, opts Options) (*Outcome, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	w, err := workload.ParseSWF(in)
	if err != nil {
		return nil, err
	}
	cfg := opts.config(w)
	tr := newRunTrace(opts.DecisionTrace, opts.Observer)
	cfg.Trace = tr
	res, err := system.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newOutcome(res)
	out.trace = tr
	return out, nil
}

// Runner executes runs back to back while recycling the simulation's
// internal arenas — the event heap, trace recorder, machine model, queuing
// slabs, and per-job runtime state — so steady-state runs allocate almost
// nothing. Results are byte-identical to the package-level RunContext: every
// recycled component reinitializes to exactly the state a fresh run builds.
//
// A Runner is NOT safe for concurrent use. Callers that fan runs out across
// goroutines should give each its own Runner (Sweep does this internally,
// one per worker). The zero value is ready to use.
type Runner struct {
	sys system.System
}

// NewRunner returns an empty Runner; its arenas are grown by the first run
// and recycled by every run after it.
func NewRunner() *Runner { return &Runner{} }

// Run generates the workload described by spec and executes it under opts,
// recycling this Runner's arenas. See RunContext for the semantics.
func (r *Runner) Run(spec WorkloadSpec, opts Options) (*Outcome, error) {
	return r.RunContext(context.Background(), spec, opts)
}

// RunContext is Run with cancellation, identical to the package-level
// RunContext but reusing this Runner's arenas.
func (r *Runner) RunContext(ctx context.Context, spec WorkloadSpec, opts Options) (*Outcome, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	w, err := spec.build()
	if err != nil {
		return nil, err
	}
	return r.runWorkload(ctx, w, opts)
}

// RunSWFContext replays a Standard Workload Format trace, identical to the
// package-level RunSWFContext but reusing this Runner's arenas.
func (r *Runner) RunSWFContext(ctx context.Context, in io.Reader, opts Options) (*Outcome, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	w, err := workload.ParseSWF(in)
	if err != nil {
		return nil, err
	}
	return r.runWorkload(ctx, w, opts)
}

func (r *Runner) runWorkload(ctx context.Context, w *workload.Workload, opts Options) (*Outcome, error) {
	cfg := opts.config(w)
	tr := newRunTrace(opts.DecisionTrace, opts.Observer)
	cfg.Trace = tr
	res, err := r.sys.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := newOutcome(res)
	out.trace = tr
	return out, nil
}

func newOutcome(res *metrics.RunResult) *Outcome {
	out := &Outcome{
		Policy:       res.Policy,
		Workload:     res.Workload,
		Load:         res.Load,
		Makespan:     res.Makespan.Duration(),
		MaxMPL:       res.MaxMPL,
		AvgMPL:       res.AvgMPL,
		Migrations:   res.Stability.Migrations,
		AvgBurst:     res.Stability.AvgBurst.Duration(),
		BurstsPerCPU: res.Stability.AvgBurstsPerCPU,
		Utilization:  res.Stability.Utilization,
		res:          res,
	}
	for _, j := range res.Jobs {
		out.Jobs = append(out.Jobs, JobOutcome{
			ID:            j.ID,
			App:           j.Class.String(),
			Request:       j.Request,
			Submit:        j.Submit.Duration(),
			Start:         j.Start.Duration(),
			End:           j.End.Duration(),
			Response:      j.Response().Duration(),
			Execution:     j.Execution().Duration(),
			AvgProcessors: j.AvgAlloc,
		})
	}
	return out
}

// ResponseByApp returns the average response time per application name.
func (o *Outcome) ResponseByApp() map[string]time.Duration {
	return secondsByApp(o.res.ResponseByClass())
}

// ExecutionByApp returns the average execution time per application name.
func (o *Outcome) ExecutionByApp() map[string]time.Duration {
	return secondsByApp(o.res.ExecutionByClass())
}

func secondsByApp(src map[app.Class]float64) map[string]time.Duration {
	out := make(map[string]time.Duration, len(src))
	for c, v := range src {
		out[c.String()] = time.Duration(v * float64(time.Second))
	}
	return out
}

// ProcessorsByApp returns the average allocation per application name.
func (o *Outcome) ProcessorsByApp() map[string]float64 {
	src := o.res.AvgAllocByClass()
	out := make(map[string]float64, len(src))
	for c, v := range src {
		out[c.String()] = v
	}
	return out
}

// MPLTimeline returns the multiprogramming level as (time, level) steps.
func (o *Outcome) MPLTimeline() []MPLPoint {
	tl := o.res.MPLTimeline
	out := make([]MPLPoint, len(tl))
	for i, p := range tl {
		out[i] = MPLPoint{At: p.At.Duration(), Level: p.Value}
	}
	return out
}

// MPLPoint is one step of the multiprogramming-level timeline.
type MPLPoint struct {
	At    time.Duration
	Level int
}

// RenderTrace draws the per-CPU execution timeline as ASCII art (Fig. 5
// style): one row per CPU, letters identifying applications. It requires
// Options.KeepTrace. from/to bound the window (zero to means the whole run).
func (o *Outcome) RenderTrace(width int, from, to time.Duration) string {
	if o.res.Recorder == nil {
		return "(trace not kept: run with Options.KeepTrace)"
	}
	classOf := map[int]rune{}
	for _, j := range o.res.Jobs {
		classOf[j.ID] = j.Class.Letter()
	}
	return o.res.Recorder.Render(trace.RenderOptions{
		Width: width,
		From:  sim.FromSeconds(from.Seconds()),
		To:    sim.FromSeconds(to.Seconds()),
		Label: func(job int) rune {
			if r, ok := classOf[job]; ok {
				return r
			}
			return '?'
		},
	})
}

// WriteCSV writes the per-job results as CSV (one row per job).
func (o *Outcome) WriteCSV(w io.Writer) error { return o.res.WriteCSV(w) }

// OutcomeJSON is the JSON schema of one run result. It is the single
// Outcome-shaped schema in the system: Outcome.WriteJSON emits it, the pdpad
// daemon's /v1/runs result field contains it, and sweep cells aggregate over
// it. The golden file testdata/outcome_schema.golden.json pins the field
// set; changing it is an API break for daemon clients.
type OutcomeJSON = metrics.Export

// OutcomeJobJSON is one job inside OutcomeJSON.
type OutcomeJobJSON = metrics.ExportJob

// Export returns the outcome in its wire form — the exact value WriteJSON
// serializes and the daemon returns.
func (o *Outcome) Export() OutcomeJSON { return o.res.ToExport() }

// WriteJSON writes the full result as indented JSON in the OutcomeJSON
// schema.
func (o *Outcome) WriteJSON(w io.Writer) error { return o.res.WriteJSON(w) }

// WriteParaver writes the execution trace in the Paraver (.prv) format the
// paper's visualizations use. It requires Options.KeepTrace.
func (o *Outcome) WriteParaver(w io.Writer) error {
	if o.res.Recorder == nil {
		return fmt.Errorf("pdpasim: trace not kept (run with Options.KeepTrace)")
	}
	return o.res.Recorder.WriteParaver(w)
}

// WriteChromeTracing writes the execution trace in the Chrome trace-event
// format (loadable in chrome://tracing or Perfetto). It requires
// Options.KeepTrace.
func (o *Outcome) WriteChromeTracing(w io.Writer) error {
	if o.res.Recorder == nil {
		return fmt.Errorf("pdpasim: trace not kept (run with Options.KeepTrace)")
	}
	names := map[int]string{}
	for _, j := range o.res.Jobs {
		names[j.ID] = fmt.Sprintf("%s #%d", j.Class, j.ID)
	}
	return o.res.Recorder.WriteChromeTracing(w, func(job int) string {
		if n, ok := names[job]; ok {
			return n
		}
		return fmt.Sprintf("job %d", job)
	})
}

// Summary renders the per-class averages as a compact table.
func (o *Outcome) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s on %s (load %.0f%%): makespan %.0fs, max ML %d, avg ML %.1f, util %.0f%%\n",
		o.Policy, o.Workload, o.Load*100, o.Makespan.Seconds(), o.MaxMPL, o.AvgMPL, o.Utilization*100)
	resp := o.ResponseByApp()
	exec := o.ExecutionByApp()
	procs := o.ProcessorsByApp()
	names := make([]string, 0, len(resp))
	for name := range resp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "  %-8s response %7.1fs  execution %7.1fs  processors %5.1f\n",
			name, resp[name].Seconds(), exec[name].Seconds(), procs[name])
	}
	return sb.String()
}
