package pdpasim

// Smoke tests for the runnable examples: each example must build and run to
// completion. These shell out to `go run`, so they are skipped in -short
// mode.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test shells out to go run")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 5 {
		t.Fatalf("only %d examples", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) < 40 {
				t.Fatalf("example %s produced suspiciously little output: %q", name, out)
			}
		})
	}
}
