// Policy comparison: a capacity-planning scenario for a shared
// compute server. The operations team wants to know which scheduler to
// deploy for a mixed workload (workload 4: equal parts superlinear,
// well-scaling, medium-scaling, and non-scaling applications) across the
// paper's three demand levels.
//
// The program sweeps policy × load, prints per-application response and
// execution times, and finishes with the stability statistics that matter
// for a CC-NUMA machine (migrations destroy locality).
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"
	"sort"

	"pdpasim"
)

func main() {
	fmt.Println("scheduler comparison on workload 4 (25% each of swim/bt.A/hydro2d/apsi)")
	fmt.Println()

	for _, load := range []float64{0.6, 0.8, 1.0} {
		spec := pdpasim.WorkloadSpec{Mix: "w4", Load: load, Seed: 11}
		fmt.Printf("=== demand %.0f%% of the machine\n", load*100)
		for _, policy := range pdpasim.Policies() {
			out, err := pdpasim.Run(spec, pdpasim.Options{Policy: policy, Seed: 11})
			if err != nil {
				log.Fatal(err)
			}
			resp := out.ResponseByApp()
			names := make([]string, 0, len(resp))
			for n := range resp {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Printf("%-10s makespan %5.0fs, max ML %2d |", out.Policy, out.Makespan.Seconds(), out.MaxMPL)
			for _, n := range names {
				fmt.Printf(" %s %6.0fs", n, resp[n].Seconds())
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Stability: why a space-sharing policy is worth it on CC-NUMA.
	fmt.Println("=== scheduling stability at 100% demand (Table 2's metrics)")
	spec := pdpasim.WorkloadSpec{Mix: "w4", Load: 1.0, Seed: 11}
	for _, policy := range pdpasim.Policies() {
		out, err := pdpasim.Run(spec, pdpasim.Options{Policy: policy, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %7d migrations, avg burst %8.0f ms, utilization %3.0f%%\n",
			out.Policy, out.Migrations, out.AvgBurst.Seconds()*1000, out.Utilization*100)
	}
}
