// Policy comparison: a capacity-planning scenario for a shared
// compute server. The operations team wants to know which scheduler to
// deploy for a mixed workload (workload 4: equal parts superlinear,
// well-scaling, medium-scaling, and non-scaling applications) across the
// paper's three demand levels.
//
// One Sweep call runs the whole policy × load grid — three seed replicates
// per cell, every policy replaying identical workload traces — across a
// bounded worker pool, then reports each cell's mean and 95% confidence
// interval. The manual double loop over Run this replaces could not say
// whether a difference between two schedulers was signal or seed noise;
// the confidence intervals can.
//
//	go run ./examples/policycompare
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"pdpasim"
)

func main() {
	fmt.Println("scheduler comparison on workload 4 (25% each of swim/bt.A/hydro2d/apsi)")
	fmt.Println()

	res, err := pdpasim.Sweep(context.Background(), pdpasim.SweepSpec{
		Policies: pdpasim.Policies(),
		Mixes:    []string{"w4"},
		Loads:    []float64{0.6, 0.8, 1.0},
		Seeds:    []int64{11, 12, 13},
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, load := range []float64{0.6, 0.8, 1.0} {
		fmt.Printf("=== demand %.0f%% of the machine (mean ±95%% CI over 3 seeds)\n", load*100)
		for _, policy := range pdpasim.Policies() {
			c := res.Cell(policy, "w4", load)
			fmt.Printf("%-10s makespan %5.0fs ±%3.0f, avg ML %4.1f |", c.Policy, c.Makespan.Mean, c.Makespan.CI95, c.AvgMPL.Mean)
			apps := make([]string, 0, len(c.Response))
			for n := range c.Response {
				apps = append(apps, n)
			}
			sort.Strings(apps)
			for _, n := range apps {
				fmt.Printf(" %s %6.0fs", n, c.Response[n].Mean)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Stability: why a space-sharing policy is worth it on CC-NUMA.
	fmt.Println("=== scheduling stability at 100% demand (Table 2's metrics)")
	for _, policy := range pdpasim.Policies() {
		c := res.Cell(policy, "w4", 1.0)
		fmt.Printf("%-10s %7.0f migrations, avg burst %8.0f ms, utilization %3.0f%%\n",
			c.Policy, c.Migrations.Mean, c.AvgBurstMS.Mean, c.Utilization.Mean*100)
	}
}
