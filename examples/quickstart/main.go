// Quickstart: run the paper's workload 3 (half well-scaling bt.A, half
// non-scaling apsi) at 100% machine demand under PDPA and under
// Equipartition, and compare — the headline experiment of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pdpasim"
)

func main() {
	spec := pdpasim.WorkloadSpec{
		Mix:  "w3", // Table 1: 50% bt.A + 50% apsi
		Load: 1.0,  // estimated demand = 100% of the 60-CPU machine
		Seed: 1,
	}

	for _, policy := range []pdpasim.Policy{pdpasim.Equipartition, pdpasim.PDPA} {
		out, err := pdpasim.RunContext(context.Background(), spec, pdpasim.Options{Policy: policy, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out.Summary())
		fmt.Println()
	}

	fmt.Println("PDPA measures each application's speedup at runtime, shrinks apsi to the")
	fmt.Println("allocation that still meets the 0.7 target efficiency, and uses the freed")
	fmt.Println("processors to admit more jobs — which is why its response times are a")
	fmt.Println("multiple better while execution times barely move (paper, Section 5.3).")
}
