// Custom policy: the scheduling framework is extensible — any type
// implementing sched.Policy can drive the resource manager. This example
// implements "FCFS-greedy", a policy that grants every application its full
// request in arrival order (what naive users expect a batch system to do),
// and races it against PDPA on workload 3 to show why performance-driven
// allocation matters.
//
// It uses the internal packages directly (examples live inside the module),
// wiring the same machinery the built-in policies use.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/machine"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/qs"
	"pdpasim/internal/rm"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
	"pdpasim/internal/trace"
	"pdpasim/internal/workload"
)

// fcfsGreedy implements sched.Policy: each job gets its full request, first
// come first served; leftovers go unused. It ignores performance entirely.
type fcfsGreedy struct{}

func (fcfsGreedy) Name() string                                                     { return "FCFS-greedy" }
func (fcfsGreedy) JobStarted(now sim.Time, job *sched.JobView)                      {}
func (fcfsGreedy) JobFinished(now sim.Time, id sched.JobID)                         {}
func (fcfsGreedy) ReportPerformance(now sim.Time, j *sched.JobView, r sched.Report) {}

func (fcfsGreedy) Plan(v sched.View) map[sched.JobID]int {
	plan := make(map[sched.JobID]int, len(v.Jobs))
	remaining := v.NCPU
	for _, j := range v.Jobs { // sorted by arrival (ID)
		grant := j.Request
		if grant > remaining {
			grant = remaining
		}
		if grant < 1 && remaining > 0 {
			grant = 1
		}
		plan[j.ID] = grant
		remaining -= grant
		if remaining < 0 {
			remaining = 0
		}
	}
	return plan
}

func (fcfsGreedy) WantsNewJob(v sched.View) bool { return true }

// runWith executes a workload under any sched.Policy and returns average
// response time per class — the same wiring internal/system uses. fixedMPL
// is the queuing system's level (0 = policy-driven admission).
func runWith(w *workload.Workload, pol sched.Policy, fixedMPL int) map[app.Class]float64 {
	eng := sim.NewEngine()
	rec := trace.NewRecorder(w.NCPU)
	rec.KeepBursts = false
	mach := machine.New(w.NCPU, rec)
	mgr := rm.NewSpaceManager(eng, mach, pol, rec)
	noise := stats.NewRNG(1)

	type done struct{ submit, end sim.Time }
	finished := map[int]*done{}
	var queue *qs.QueuingSystem
	start := func(job workload.Job) {
		id := sched.JobID(job.ID)
		prof := app.ProfileFor(job.Class)
		an := selfanalyzer.MustNew(selfanalyzer.ConfigFor(prof, 0.01),
			noise.Stream(fmt.Sprint(job.ID)))
		d := &done{submit: job.Submit}
		finished[job.ID] = d
		rt := nthlib.New(eng, prof, job.Request, an, nthlib.Hooks{
			OnPerformance: func(m selfanalyzer.Measurement) { mgr.ReportPerformance(id, m) },
			OnDone: func() {
				d.end = eng.Now()
				mgr.JobFinished(id)
				queue.JobCompleted()
			},
		})
		mgr.StartJob(id, rt)
	}
	queue = qs.New(eng, fixedMPL, mgr.CanAdmit, start, rec)
	mgr.SetAdmissionChanged(queue.TryStart)
	queue.SubmitAll(w)
	eng.Run(50000 * sim.Second)

	sums := map[app.Class]*stats.Summary{}
	for _, job := range w.Jobs {
		d := finished[job.ID]
		if sums[job.Class] == nil {
			sums[job.Class] = &stats.Summary{}
		}
		sums[job.Class].Add((d.end - d.submit).Seconds())
	}
	out := map[app.Class]float64{}
	for c, s := range sums {
		out[c] = s.Mean()
	}
	return out
}

func main() {
	tuned, err := workload.Generate(workload.GenConfig{
		Mix: workload.W3(), Load: 0.6, NCPU: 60, Window: 300 * sim.Second, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Submit without tuning: every job asks for 30 processors (the Table 3
	// scenario) — this is where ignoring measured performance hurts most.
	w := tuned.WithUniformRequest(30)
	fmt.Printf("workload 3 at 60%% demand, every job requesting 30 CPUs: %d jobs %v\n\n",
		len(w.Jobs), w.CountByClass())

	type entry struct {
		pol sched.Policy
		ml  int
	}
	for _, e := range []entry{
		{fcfsGreedy{}, 4},                       // fixed level, like the paper's baselines
		{core.MustNew(core.DefaultParams()), 0}, // PDPA decides the level itself
	} {
		resp := runWith(w, e.pol, e.ml)
		fmt.Printf("%-12s", e.pol.Name())
		for _, c := range app.AllClasses() {
			if v, ok := resp[c]; ok {
				fmt.Printf("  %s resp %6.0fs", c, v)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nFCFS-greedy parks 30 processors on every apsi (which can use ~2 of them);")
	fmt.Println("PDPA measures that and reclaims the waste for the queue.")
}
