// SelfAnalyzer walkthrough: how the NANOS runtime measures application
// speedup without a priori information (paper, Section 3.1).
//
// The program simulates one bt.A-like application. First, the Dynamic
// Periodicity Detector watches the stream of parallel-loop addresses (the
// binary-only monitoring path) and finds the outer-loop iteration boundary.
// Then the SelfAnalyzer times baseline iterations on a few processors and
// converts later iteration times into speedup/efficiency measurements — the
// exact inputs PDPA schedules from.
//
//	go run ./examples/selfanalyze
package main

import (
	"fmt"

	"pdpasim/internal/app"
	"pdpasim/internal/periodicity"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/stats"
)

func main() {
	prof := app.ProfileFor(app.BT)

	// 1. Find the iterative structure from the loop-address stream.
	fmt.Println("1) Dynamic Periodicity Detector on bt.A's parallel-loop stream:")
	det := periodicity.NewDetector(0)
	boundaries := 0
	for iter := 0; iter < 6; iter++ {
		for _, loop := range prof.LoopSignature {
			if det.Observe(loop) {
				boundaries++
			}
		}
	}
	fmt.Printf("   detected period = %d parallel loops per outer iteration "+
		"(signature length %d), %d boundaries seen\n\n",
		det.Period(), len(prof.LoopSignature), boundaries)

	// 2. Measure speedups from iteration wall times.
	fmt.Println("2) SelfAnalyzer measurements (baseline: 2 iterations on 4 processors):")
	an := selfanalyzer.MustNew(selfanalyzer.ConfigFor(prof, 0.01), stats.NewRNG(42))
	iteration := 0
	feed := func(procs int) {
		// Wall time of one clean iteration at this allocation, from the
		// application's true (hidden) speedup curve.
		wall := sim.Time(float64(prof.SerialIterationTime) / prof.Speedup.Speedup(procs))
		sample := app.IterationSample{Index: iteration, WallTime: wall, Clean: true, Rate: prof.Speedup.Speedup(procs)}
		iteration++
		m, ok := an.RecordIteration(sample, procs)
		if !ok {
			fmt.Printf("   iteration %2d on %2d procs: %7.2fs  (baseline, no report)\n",
				sample.Index, procs, wall.Seconds())
			return
		}
		fmt.Printf("   iteration %2d on %2d procs: %7.2fs  -> speedup %5.2f, efficiency %.2f\n",
			sample.Index, procs, wall.Seconds(), m.Speedup, m.Efficiency)
	}
	feed(4)
	feed(4)
	for _, p := range []int{8, 8, 16, 24, 30, 40, 60} {
		feed(p)
	}

	fmt.Println("\n   PDPA would hold this application near the largest allocation whose")
	fmt.Printf("   efficiency clears the 0.7 target: %d processors.\n",
		app.MaxProcsAtEfficiency(prof.Speedup, 0.7, 60))
}
