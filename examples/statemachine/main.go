// State-machine walkthrough: watch PDPA's Fig. 2 search run live. Three
// applications with very different scalability start together on a 60-CPU
// machine; the program prints every state transition PDPA takes — the
// NO_REF evaluation, hydro2d's DEC descent to its 0.7-efficiency frontier,
// bt.A's INC climb with the RelativeSpeedup test, and apsi settling at its
// tuned request — using the policy's transition-history API.
//
//	go run ./examples/statemachine
package main

import (
	"fmt"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/machine"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/rm"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

func main() {
	eng := sim.NewEngine()
	rec := trace.NewRecorder(60)
	mach := machine.New(60, rec)
	pdpa := core.MustNew(core.DefaultParams())
	pdpa.RecordHistory(true)
	mgr := rm.NewSpaceManager(eng, mach, pdpa, rec)

	names := map[sched.JobID]string{}
	start := func(id sched.JobID, class app.Class, request int) {
		prof := app.ProfileFor(class)
		names[id] = prof.Name
		an := selfanalyzer.MustNew(selfanalyzer.ConfigFor(prof, 0), nil)
		rt := nthlib.New(eng, prof, request, an, nthlib.Hooks{
			OnPerformance: func(m selfanalyzer.Measurement) { mgr.ReportPerformance(id, m) },
			OnDone:        func() { mgr.JobFinished(id) },
		})
		mgr.StartJob(id, rt)
	}

	// Arrive staggered so the INC job starts with limited free processors
	// and has to climb.
	start(0, app.Hydro2D, 30) // will descend: 30 -> 26 -> ... -> ~10
	eng.At(2*sim.Second, "arrive-bt", func() { start(1, app.BT, 30) })
	eng.At(4*sim.Second, "arrive-apsi", func() { start(2, app.Apsi, 2) })

	eng.Run(120 * sim.Second)

	fmt.Println("PDPA transitions (target_eff=0.7, high_eff=0.9, step=4):")
	fmt.Println()
	fmt.Printf("%8s  %-8s %-8s -> %-8s %6s %8s %6s\n",
		"time", "app", "from", "to", "procs", "desired", "eff")
	for _, tr := range pdpa.History() {
		fmt.Printf("%7.1fs  %-8s %-8s -> %-8s %6d %8d %6.2f\n",
			tr.At.Seconds(), names[tr.Job], tr.From, tr.To,
			tr.Procs, tr.Desired, tr.Efficiency)
	}
	fmt.Println()
	fmt.Println("hydro2d walks DOWN by step until its efficiency clears the target;")
	fmt.Println("bt.A (arriving second, into the leftovers) walks UP while the")
	fmt.Println("RelativeSpeedup test keeps passing; apsi is STABLE at its request.")
}
