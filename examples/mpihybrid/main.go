// MPI+OpenMP malleability: the paper's first future-work direction
// (Section 6) — making rigid MPI applications schedulable by PDPA by
// "controlling the number of processors given to each MPI process to run
// OpenMP threads". This example submits the same bt.A-style application
// three ways — rigid MPI, MPI+OpenMP hybrid with 4 processes, and fully
// malleable OpenMP — alongside background load, and shows what PDPA can do
// with each.
//
//	go run ./examples/mpihybrid
package main

import (
	"fmt"
	"log"

	"pdpasim/internal/app"
	"pdpasim/internal/core"
	"pdpasim/internal/machine"
	"pdpasim/internal/nthlib"
	"pdpasim/internal/rm"
	"pdpasim/internal/sched"
	"pdpasim/internal/selfanalyzer"
	"pdpasim/internal/sim"
	"pdpasim/internal/trace"
)

// run executes one bt.A with the given granularity next to a hydro2d
// background job, under PDPA on 32 CPUs, and reports the bt execution time
// and its allocation history length.
func run(gran int) (execTime sim.Time, allocs []trace.TimePoint) {
	eng := sim.NewEngine()
	rec := trace.NewRecorder(32)
	mach := machine.New(32, rec)
	mgr := rm.NewSpaceManager(eng, mach, core.MustNew(core.DefaultParams()), rec)

	startJob := func(id sched.JobID, class app.Class, request, g int, onDone func()) {
		prof := app.ProfileFor(class)
		analyzer := selfanalyzer.MustNew(selfanalyzer.ConfigFor(prof, 0), nil)
		rt := nthlib.New(eng, prof, request, analyzer, nthlib.Hooks{
			OnPerformance: func(m selfanalyzer.Measurement) { mgr.ReportPerformance(id, m) },
			OnDone: func() {
				mgr.JobFinished(id)
				if onDone != nil {
					onDone()
				}
			},
		})
		rt.SetGranularity(g)
		mgr.StartJob(id, rt)
	}

	// Background: hydro2d holding part of the machine.
	startJob(0, app.Hydro2D, 16, 1, nil)
	var btEnd sim.Time
	startJob(1, app.BT, 24, gran, func() { btEnd = eng.Now() })
	eng.Run(5000 * sim.Second)
	return btEnd, rec.AllocationHistory(1)
}

func main() {
	fmt.Println("bt.A (request 24) next to a hydro2d, PDPA on 32 CPUs:")
	fmt.Println()
	for _, variant := range []struct {
		name string
		gran int
	}{
		{"rigid MPI (all-or-nothing 24)", 24},
		{"MPI+OpenMP, 4 processes", 4},
		{"malleable OpenMP", 1},
	} {
		end, allocs := run(variant.gran)
		if end == 0 {
			log.Fatalf("%s: did not finish", variant.name)
		}
		startedAt := 0.0
		if len(allocs) > 0 {
			startedAt = allocs[0].At.Seconds()
		}
		fmt.Printf("%-32s started %6.1fs, finished %7.1fs, allocations:",
			variant.name, startedAt, end.Seconds())
		for _, p := range allocs {
			fmt.Printf(" %d", p.Value)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The rigid job cannot start until 24 processors are free at once — here")
	fmt.Println("the background hydro2d shrinks quickly, so it only waits 2.5s and then")
	fmt.Println("runs dedicated; on a loaded machine that wait dominates (see the abl4")
	fmt.Println("experiment). The hybrid and malleable variants start immediately on")
	fmt.Println("what is free and let PDPA's search grow them.")
}
