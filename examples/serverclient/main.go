// Example serverclient starts the pdpad service in-process, then acts as an
// HTTP client against it: it submits a simulation run, follows its progress
// over the server-sent-events stream, fetches the final result, shows that
// resubmitting the identical spec is a cache hit, and reads the live
// Prometheus metrics — the full simulation-as-a-service round trip.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"pdpasim/internal/runqueue"
	"pdpasim/internal/server"
)

func main() {
	// Serve: in production this is `pdpad -addr :8080`; here the daemon's
	// handler runs on an ephemeral in-process listener.
	pool := runqueue.New(runqueue.Config{BaseWorkers: 2})
	ts := httptest.NewServer(server.New(pool))
	defer ts.Close()

	// Submit workload 3 under PDPA.
	payload := `{"workload":{"mix":"w3","load":1.0,"seed":7},"options":{"policy":"pdpa"}}`
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	decode(resp, &submitted)
	fmt.Printf("submitted %s (state %s)\n", submitted.ID, submitted.State)

	// Stream progress: one SSE message per lifecycle transition.
	events, err := http.Get(ts.URL + "/v1/runs/" + submitted.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	scanner := bufio.NewScanner(events.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("event: %s\n", ev.State)
		}
	}
	events.Body.Close()

	// Fetch the finished run, result included.
	status, err := http.Get(ts.URL + "/v1/runs/" + submitted.ID)
	if err != nil {
		log.Fatal(err)
	}
	var run struct {
		State       string  `json:"state"`
		WallSeconds float64 `json:"wall_seconds"`
		Result      struct {
			Policy   string `json:"policy"`
			Workload string `json:"workload"`
			MaxMPL   int    `json:"max_mpl"`
			Jobs     []any  `json:"jobs"`
		} `json:"result"`
	}
	decode(status, &run)
	fmt.Printf("%s on %s: %d jobs, max MPL %d, simulated in %.0f ms\n",
		run.Result.Policy, run.Result.Workload, len(run.Result.Jobs),
		run.Result.MaxMPL, run.WallSeconds*1000)

	// The identical spec never simulates twice: the canonical-config-hash
	// cache answers instead.
	again, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	var dup struct {
		ID       string `json:"id"`
		CacheHit bool   `json:"cache_hit"`
	}
	decode(again, &dup)
	fmt.Printf("resubmitted: joined %s, cache hit %v\n", dup.ID, dup.CacheHit)

	// Live metrics, Prometheus text format.
	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer metrics.Body.Close()
	mscan := bufio.NewScanner(metrics.Body)
	for mscan.Scan() {
		line := mscan.Text()
		if strings.HasPrefix(line, "pdpad_cache_") || strings.HasPrefix(line, "pdpad_run_wall_seconds_count") {
			fmt.Println(line)
		}
	}
}

func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
