// Cluster scheduling: the paper's future-work direction of running the
// environment on clusters of SMPs (Section 6). The same workload runs on a
// 4-node x 16-CPU cluster — each node driven by its own PDPA instance —
// under three placement strategies, and on a single 64-CPU machine for
// comparison, showing the partitioning cost and the value of coordinating
// admission across nodes.
//
//	go run ./examples/clustersched
package main

import (
	"fmt"
	"log"

	"pdpasim/internal/app"
	"pdpasim/internal/cluster"
	"pdpasim/internal/sim"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

func main() {
	w, err := workload.Generate(workload.GenConfig{
		Mix: workload.W4(), Load: 0.7, NCPU: 64, Window: 300 * sim.Second, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload 4 at 70%% demand: %d jobs\n\n", len(w.Jobs))

	fmt.Println("4 nodes x 16 CPUs, PDPA on every node:")
	for _, placement := range []cluster.Placement{
		cluster.RoundRobin, cluster.LeastLoaded, cluster.Coordinated,
	} {
		res, err := cluster.Run(cluster.Config{
			Nodes: 4, CPUsPerNode: 16, Workload: w,
			Placement: placement, Seed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		resp := res.ResponseByClass()
		fmt.Printf("  %-12s makespan %5.0fs  imbalance %.2f  |  swim %5.0fs  bt %5.0fs  hydro %5.0fs  apsi %5.0fs\n",
			placement, res.Makespan.Seconds(), res.Imbalance(),
			resp[app.Swim], resp[app.BT], resp[app.Hydro2D], resp[app.Apsi])
	}

	// The unpartitioned reference: one 64-CPU machine.
	single, err := system.Run(system.Config{Workload: w, Policy: system.PDPA, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	resp := single.ResponseByClass()
	fmt.Printf("\n1 node x 64 CPUs (the paper's setting):\n")
	fmt.Printf("  %-12s makespan %5.0fs                  |  swim %5.0fs  bt %5.0fs  hydro %5.0fs  apsi %5.0fs\n",
		"shared", single.Makespan.Seconds(),
		resp[app.Swim], resp[app.BT], resp[app.Hydro2D], resp[app.Apsi])

	fmt.Println("\nPartitioning caps every job at 16 CPUs (jobs cannot span nodes), which")
	fmt.Println("hurts the scalable applications; coordinated admission recovers part of")
	fmt.Println("the loss by steering jobs to nodes whose allocations have settled.")
}
