// Dynamic multiprogramming level: reproduce the paper's Fig. 8 story.
//
// A fixed multiprogramming level either fragments the machine (too low) or
// overloads it (too high). PDPA instead derives the level from measured
// performance: it admits another job exactly when processors are free and
// every running application's allocation has settled. This program runs
// workload 2 at 100% demand and prints the level PDPA chose over time,
// alongside what a few fixed levels would have achieved.
//
//	go run ./examples/dynamicmpl
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"pdpasim"
)

func main() {
	spec := pdpasim.WorkloadSpec{Mix: "w2", Load: 1.0, Seed: 3}

	out, err := pdpasim.RunContext(context.Background(), spec, pdpasim.Options{Policy: pdpasim.PDPA, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PDPA decided the multiprogramming level dynamically: max %d, average %.1f\n\n",
		out.MaxMPL, out.AvgMPL)

	// Step chart of the level over time (Fig. 8).
	timeline := out.MPLTimeline()
	bucket := out.Makespan / 40
	level, idx := 0, 0
	for t := bucket; t <= out.Makespan; t += bucket {
		for idx < len(timeline) && timeline[idx].At <= t {
			level = timeline[idx].Level
			idx++
		}
		fmt.Printf("%6.0fs |%s %d\n", t.Seconds(), strings.Repeat("#", level), level)
	}
	fmt.Println()

	// The same workload under fixed levels, for contrast.
	fmt.Println("the same trace under Equipartition with a fixed level:")
	for _, ml := range []int{2, 4, 8} {
		fixed, err := pdpasim.RunContext(context.Background(), spec, pdpasim.Options{
			Policy: pdpasim.Equipartition, FixedMPL: ml, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ml=%d: makespan %5.0fs, bt.A response %6.0fs, hydro2d response %6.0fs\n",
			ml, fixed.Makespan.Seconds(),
			fixed.ResponseByApp()["bt.A"].Seconds(),
			fixed.ResponseByApp()["hydro2d"].Seconds())
	}
	fmt.Println("\nno single fixed level wins at every metric; PDPA tracks the workload instead.")
}
