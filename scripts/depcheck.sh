#!/usr/bin/env bash
# Deprecation gate: non-test code must not call the deprecated facade entry
# points. Run/RunSWF are kept only as compatibility wrappers over
# RunContext/RunSWFContext, and SweepSpec.Progress only as an adapter over
# SweepSpec.Observer; new call sites belong on the replacements. Tests are
# exempt — the determinism suite deliberately pins Run ≡ RunContext.
#
# staticcheck would flag these through SA1019, but the repo is stdlib-only;
# this grep is the dependency-free equivalent, run by CI next to go vet.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

hits=$(grep -rn --include='*.go' -E 'pdpasim\.Run(SWF)?\(' cmd internal examples | grep -v '_test\.go' || true)
if [[ -n "$hits" ]]; then
    echo "depcheck: deprecated pdpasim.Run/RunSWF call sites (use RunContext/RunSWFContext):" >&2
    echo "$hits" >&2
    fail=1
fi

hits=$(grep -rn --include='*.go' -E 'SweepSpec\{[^}]*Progress:|\.Progress = ' cmd internal examples | grep -v '_test\.go' || true)
if [[ -n "$hits" ]]; then
    echo "depcheck: deprecated SweepSpec.Progress call sites (use SweepSpec.Observer):" >&2
    echo "$hits" >&2
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "depcheck: no deprecated API call sites"
