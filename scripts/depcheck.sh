#!/usr/bin/env bash
# Removed-API gate. The v1 cleanup deleted the deprecated facade symbols —
# Run and RunSWF (use RunContext/RunSWFContext) and SweepSpec.Progress /
# SweepProgress (use SweepSpec.Observer). This check keeps them deleted:
# no definition may reintroduce them, and no new `Deprecated:` marker may
# accumulate without a removal plan recorded here.
#
# staticcheck would flag reintroductions through SA1019, but the repo is
# stdlib-only; this grep is the dependency-free equivalent, run by CI next
# to go vet.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# The facade lives in the repo root (package pdpasim); internal packages
# may name things Run freely.
hits=$(grep -n -E '^func Run(SWF)?\(' ./*.go || true)
if [[ -n "$hits" ]]; then
    echo "depcheck: removed facade symbols Run/RunSWF reintroduced (keep RunContext/RunSWFContext):" >&2
    echo "$hits" >&2
    fail=1
fi

hits=$(grep -rn --include='*.go' -E 'Progress func\(SweepProgress\)|type SweepProgress ' . || true)
if [[ -n "$hits" ]]; then
    echo "depcheck: removed SweepSpec.Progress/SweepProgress reintroduced (keep SweepSpec.Observer):" >&2
    echo "$hits" >&2
    fail=1
fi

# Match only real deprecation markers (a doc-comment line starting with
# "// Deprecated:"), not prose that merely mentions the convention.
hits=$(grep -rn --include='*.go' -E '^\s*// Deprecated:' . || true)
if [[ -n "$hits" ]]; then
    echo "depcheck: new Deprecated: markers — remove the symbol or register its removal plan here:" >&2
    echo "$hits" >&2
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "depcheck: removed APIs stayed removed, no stray deprecation markers"
