#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark suite with -benchmem, capture CPU and
# allocation pprof profiles, and record a BENCH_<date>.json trajectory point.
#
# Environment knobs:
#   BENCH_DIR    output directory for raw output + profiles (default bench-artifacts)
#   BENCH_COUNT  -count repetitions per benchmark            (default 5)
#   BENCH_TIME   -benchtime per repetition                   (default 1s)
#   BENCH_MATCH  -bench regexp                               (default the gated suite)
#   BENCH_PHASE  phase label recorded into the JSON          (default post)
#   BENCH_JSON   trajectory file to create/merge             (default BENCH_<today>.json)
#
# Typical workflow around an optimization:
#   BENCH_PHASE=pre  BENCH_JSON=BENCH_2026-08-05.json scripts/bench.sh   # before
#   ... optimize ...
#   BENCH_PHASE=post BENCH_JSON=BENCH_2026-08-05.json scripts/bench.sh   # after
#   go tool pprof -top bench-artifacts/bench.test bench-artifacts/cpu.pprof
set -euo pipefail
cd "$(dirname "$0")/.."

out_dir=${BENCH_DIR:-bench-artifacts}
count=${BENCH_COUNT:-5}
benchtime=${BENCH_TIME:-1s}
match=${BENCH_MATCH:-'SingleRunPDPA|SingleRunIRIX|Sweep$'}
phase=${BENCH_PHASE:-post}
json=${BENCH_JSON:-BENCH_$(date +%F).json}

mkdir -p "$out_dir"

go test -run '^$' -bench "$match" -benchmem -benchtime "$benchtime" -count "$count" \
  -cpuprofile "$out_dir/cpu.pprof" -memprofile "$out_dir/mem.pprof" \
  -o "$out_dir/bench.test" . | tee "$out_dir/bench.txt"

go run ./cmd/benchgate record -out "$json" -phase "$phase" "$out_dir/bench.txt"

echo
echo "profiles: go tool pprof -top $out_dir/bench.test $out_dir/cpu.pprof"
echo "          go tool pprof -sample_index=alloc_objects -top $out_dir/bench.test $out_dir/mem.pprof"
