#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark suite with -benchmem, capture CPU and
# allocation pprof profiles, and record a BENCH_<date>.json trajectory point.
#
# Environment knobs:
#   BENCH_DIR    output directory for raw output + profiles (default bench-artifacts)
#   BENCH_COUNT  -count repetitions per benchmark            (default 5)
#   BENCH_TIME   -benchtime per repetition                   (default 1s)
#   BENCH_MATCH  -bench regexp                               (default the gated suite)
#   BENCH_PHASE  phase label recorded into the JSON          (default post)
#   BENCH_JSON   trajectory file to create/merge             (default BENCH_<today>.json)
#   BENCH_MANYJOBS  also run BenchmarkSweepManyJobs once     (default 1; 0 skips)
#
# Typical workflow around an optimization:
#   BENCH_PHASE=pre  BENCH_JSON=BENCH_2026-08-05.json scripts/bench.sh   # before
#   ... optimize ...
#   BENCH_PHASE=post BENCH_JSON=BENCH_2026-08-05.json scripts/bench.sh   # after
#   go tool pprof -top bench-artifacts/bench.test bench-artifacts/cpu.pprof
set -euo pipefail
cd "$(dirname "$0")/.."

out_dir=${BENCH_DIR:-bench-artifacts}
count=${BENCH_COUNT:-5}
benchtime=${BENCH_TIME:-1s}
match=${BENCH_MATCH:-'SingleRunPDPA|SingleRunIRIX|Sweep$'}
phase=${BENCH_PHASE:-post}
json=${BENCH_JSON:-BENCH_$(date +%F).json}
manyjobs=${BENCH_MANYJOBS:-1}

mkdir -p "$out_dir"

go test -run '^$' -bench "$match" -benchmem -benchtime "$benchtime" -count "$count" \
  -cpuprofile "$out_dir/cpu.pprof" -memprofile "$out_dir/mem.pprof" \
  -o "$out_dir/bench.test" . | tee "$out_dir/bench.txt"

# The million-job throughput-mode point rides along as a single iteration
# (one pass already simulates >1M jobs; repeating a ~30 s benchmark would
# dominate the suite's runtime). It must land in the same bench.txt before
# the record call: benchgate record replaces a phase's benchmark map
# wholesale, so a separate record would drop the main suite.
if [ "$manyjobs" != 0 ]; then
  go test -run '^$' -bench SweepManyJobs -benchmem -benchtime 1x -count 1 . \
    | tee -a "$out_dir/bench.txt"
fi

go run ./cmd/benchgate record -out "$json" -phase "$phase" "$out_dir/bench.txt"

echo
echo "profiles: go tool pprof -top $out_dir/bench.test $out_dir/cpu.pprof"
echo "          go tool pprof -sample_index=alloc_objects -top $out_dir/bench.test $out_dir/mem.pprof"
