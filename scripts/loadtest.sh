#!/usr/bin/env bash
# loadtest.sh — end-to-end durability and sustained-load smoke against a real
# pdpad process. Three phases:
#
#   1. Durability: submit runs, kill -9 the daemon mid-life, restart on the
#      same store directory, and require the paginated run list to return
#      every previously completed run with a byte-identical status body.
#   2. Load: a pdpaload soak with more closed-loop workers than the daemon's
#      shed depth, asserting completions, observed 429+Retry-After shedding,
#      a p99 bound, and zero contract violations or leaked goroutines.
#   3. Shutdown: SIGTERM must drain and exit cleanly.
#
# Environment knobs:
#   LOADTEST_PORT      listen port                  (default 18080)
#   LOADTEST_DURATION  soak length for phase 2      (default 5s)
#   LOADTEST_WORKERS   soak concurrency for phase 2 (default 16)
set -euo pipefail
cd "$(dirname "$0")/.."

port=${LOADTEST_PORT:-18080}
addr="http://127.0.0.1:$port"
duration=${LOADTEST_DURATION:-5s}
workers=${LOADTEST_WORKERS:-16}

work=$(mktemp -d)
daemon_pid=""
cleanup() {
    [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/pdpad" ./cmd/pdpad
go build -o "$work/pdpaload" ./cmd/pdpaload

start_daemon() {
    # A deliberately small pool (-max-queue 4, a fraction of the soak's
    # worker count) so phase 2's closed-loop soak reliably drives the shed
    # path; -store-sync 10ms keeps the durability window short for phase 1's
    # sleep.
    "$work/pdpad" -addr "127.0.0.1:$port" -store "$work/store" -store-sync 10ms \
        -base 2 -max 4 -warmup 10ms -max-queue 4 >>"$work/pdpad.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 1 100); do
        if curl -fsS "$addr/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: daemon never answered /healthz" >&2
    cat "$work/pdpad.log" >&2
    exit 1
}

wait_done() { # id -> polls until the run is terminal
    local id=$1 state
    for _ in $(seq 1 300); do
        state=$(curl -fsS "$addr/v1/runs/$id" | jq -r .state)
        case "$state" in
        done) return 0 ;;
        failed | canceled)
            echo "FAIL: run $id reached $state" >&2
            exit 1
            ;;
        esac
        sleep 0.1
    done
    echo "FAIL: run $id never finished" >&2
    exit 1
}

echo "== phase 1: durability across kill -9"
start_daemon
ids=()
for seed in 101 102 103; do
    id=$(curl -fsS "$addr/v1/runs" -d \
        "{\"workload\":{\"mix\":\"w1\",\"load\":0.5,\"window_s\":30,\"seed\":$seed},\"options\":{\"policy\":\"equip\"}}" |
        jq -r .id)
    ids+=("$id")
done
for id in "${ids[@]}"; do
    wait_done "$id"
    curl -fsS "$addr/v1/runs/$id" >"$work/before-$id.json"
done

sleep 1 # > -store-sync 10ms: completed runs are on disk
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
echo "   killed -9, restarting on the same store"
start_daemon

# Cursor-walk the paginated run list and require every pre-kill run back.
listed=$(
    cursor=""
    while :; do
        url="$addr/v1/runs?limit=2"
        [[ -n "$cursor" ]] && url="$url&cursor=$cursor"
        page=$(curl -fsS "$url")
        jq -r '.runs[].id' <<<"$page"
        cursor=$(jq -r '.next_cursor // empty' <<<"$page")
        [[ -z "$cursor" ]] && break
    done
)
for id in "${ids[@]}"; do
    if ! grep -qx "$id" <<<"$listed"; then
        echo "FAIL: recovered run list is missing $id (got: $listed)" >&2
        exit 1
    fi
    curl -fsS "$addr/v1/runs/$id" >"$work/after-$id.json"
    if ! cmp -s "$work/before-$id.json" "$work/after-$id.json"; then
        echo "FAIL: run $id body changed across restart:" >&2
        diff "$work/before-$id.json" "$work/after-$id.json" >&2 || true
        exit 1
    fi
done
echo "   ${#ids[@]} runs byte-identical across kill -9 + restart"

echo "== phase 2: sustained load ($workers workers for $duration)"
"$work/pdpaload" -addr "$addr" -duration "$duration" -workers "$workers" \
    -min-completed 5 -require-shed -max-p99 30s

echo "== phase 3: clean SIGTERM shutdown"
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
if [[ $rc -ne 0 ]]; then
    echo "FAIL: daemon exited $rc on SIGTERM" >&2
    tail -n 20 "$work/pdpad.log" >&2
    exit 1
fi
grep -q "pdpad: bye" "$work/pdpad.log" || {
    echo "FAIL: daemon log missing clean-shutdown marker" >&2
    exit 1
}

echo "loadtest: durability, shedding, and clean shutdown all verified"
