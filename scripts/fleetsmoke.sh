#!/usr/bin/env bash
# fleetsmoke.sh — end-to-end fleet smoke against real pdpad processes: one
# coordinator, two node daemons, and a standalone daemon as the determinism
# oracle. Phases:
#
#   1. Identity: the same sweep grid is run on the standalone daemon and on
#      the fleet; the per-cell aggregate JSON must match byte for byte.
#   2. Node death: a second sweep is submitted and one node is kill -9'd
#      mid-flight. The coordinator must declare the node dead, requeue its
#      members onto the survivor, finish the sweep — and the cells must
#      still be byte-identical to the standalone run of the same grid.
#   3. Coordinator death: a third sweep is submitted and the coordinator
#      itself is kill -9'd once at least one member has finished. A new
#      coordinator restarted on the same -store rehydrates the sweep, the
#      surviving node re-registers and reconciles, and the SAME sweep id
#      finishes with cells byte-identical to the standalone run.
#   4. Hygiene: goroutine counts (pdpad_goroutines) on the coordinator and
#      the surviving node must return to their post-registration baseline,
#      and SIGTERM must drain everything cleanly.
#
# Environment knobs:
#   FLEETSMOKE_PORT_BASE  first of four consecutive ports (default 18090)
set -euo pipefail
cd "$(dirname "$0")/.."

base_port=${FLEETSMOKE_PORT_BASE:-18090}
coord_port=$base_port
node1_port=$((base_port + 1))
node2_port=$((base_port + 2))
solo_port=$((base_port + 3))
coord="http://127.0.0.1:$coord_port"
node1="http://127.0.0.1:$node1_port"
solo="http://127.0.0.1:$solo_port"

work=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/pdpad" ./cmd/pdpad

wait_healthz() { # base-url name
    for _ in $(seq 1 100); do
        if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: $2 never answered /healthz" >&2
    cat "$work/$2.log" >&2
    exit 1
}

wait_sweep() { # base-url id -> polls until the sweep is done
    local url=$1 id=$2 state
    for _ in $(seq 1 600); do
        state=$(curl -fsS "$url/v1/sweeps/$id" | jq -r .state)
        case "$state" in
        done) return 0 ;;
        failed | canceled)
            echo "FAIL: sweep $id reached $state" >&2
            curl -fsS "$url/v1/sweeps/$id" | jq . >&2
            exit 1
            ;;
        esac
        sleep 0.1
    done
    echo "FAIL: sweep $id never finished" >&2
    exit 1
}

goroutines() { # base-url -> current pdpad_goroutines reading
    curl -fsS "$1/metrics" | awk '$1 == "pdpad_goroutines" {print int($2)}'
}

echo "== start standalone oracle + coordinator + 2 nodes"
"$work/pdpad" -addr "127.0.0.1:$solo_port" -base 2 -max 4 -warmup 10ms \
    >"$work/solo.log" 2>&1 &
solo_pid=$!
pids+=($solo_pid)
# -heartbeat 100ms with -dead-after 3s: phase 2's kill is detected within a
# few seconds, but a node whose workers saturate the CPU crunching phase 3's
# long members can't be declared falsely dead between heartbeats (a 600ms
# dead-after livelocks: declare dead -> requeue -> re-register -> repeat).
# -store with per-append fsync makes the routing table survive the kill -9.
coord_flags=(-coordinator -addr "127.0.0.1:$coord_port" -heartbeat 100ms
    -unhealthy-after 500ms -dead-after 3s
    -store "$work/coordstore" -store-sync=-1ms)
"$work/pdpad" "${coord_flags[@]}" >"$work/coord.log" 2>&1 &
coord_pid=$!
pids+=($coord_pid)
wait_healthz "$coord" coord
"$work/pdpad" -node -join "$coord" -addr "127.0.0.1:$node1_port" \
    -node-name n1 -base 2 -max 4 -warmup 10ms >"$work/node1.log" 2>&1 &
node1_pid=$!
pids+=($node1_pid)
"$work/pdpad" -node -join "$coord" -addr "127.0.0.1:$node2_port" \
    -node-name n2 -base 2 -max 4 -warmup 10ms >"$work/node2.log" 2>&1 &
node2_pid=$!
pids+=($node2_pid)
wait_healthz "$solo" solo
wait_healthz "$node1" node1
wait_healthz "http://127.0.0.1:$node2_port" node2

for _ in $(seq 1 100); do
    healthy=$(curl -fsS "$coord/v1/nodes" |
        jq '[.nodes[] | select(.state == "healthy")] | length')
    [[ "$healthy" == 2 ]] && break
    sleep 0.1
done
if [[ "$healthy" != 2 ]]; then
    echo "FAIL: fleet never reached 2 healthy nodes (got $healthy)" >&2
    curl -fsS "$coord/v1/nodes" | jq . >&2
    exit 1
fi
echo "   2 nodes registered and healthy"

coord_base_goro=$(goroutines "$coord")
node1_base_goro=$(goroutines "$node1")

submit_sweep() { # base-url payload -> sweep id
    curl -fsS "$1/v1/sweeps" -d "$2" | jq -r .id
}

sweep_cells() { # base-url id -> canonical cells JSON on stdout
    curl -fsS "$1/v1/sweeps/$2" | jq -c .cells
}

echo "== phase 1: fleet sweep byte-identical to standalone"
grid1='{"policies":["equip","pdpa"],"mixes":["w1"],"loads":[0.5,0.8],"seeds":[1,2],"ncpu":32,"window_s":30}'
solo_id=$(submit_sweep "$solo" "$grid1")
fleet_id=$(submit_sweep "$coord" "$grid1")
wait_sweep "$solo" "$solo_id"
wait_sweep "$coord" "$fleet_id"
sweep_cells "$solo" "$solo_id" >"$work/solo-cells-1.json"
sweep_cells "$coord" "$fleet_id" >"$work/fleet-cells-1.json"
if ! cmp -s "$work/solo-cells-1.json" "$work/fleet-cells-1.json"; then
    echo "FAIL: fleet sweep cells differ from standalone:" >&2
    diff "$work/solo-cells-1.json" "$work/fleet-cells-1.json" >&2 || true
    exit 1
fi
echo "   8 cells byte-identical across standalone and fleet"

echo "== phase 2: kill -9 a node mid-sweep"
grid2='{"policies":["equip","pdpa"],"mixes":["w1"],"loads":[0.7,0.9],"seeds":[3,4,5,6],"ncpu":32,"window_s":60}'
solo_id2=$(submit_sweep "$solo" "$grid2")
fleet_id2=$(submit_sweep "$coord" "$grid2")
kill -9 "$node2_pid"
wait "$node2_pid" 2>/dev/null || true
echo "   node2 killed right after placement"
wait_sweep "$solo" "$solo_id2"
wait_sweep "$coord" "$fleet_id2"
sweep_cells "$solo" "$solo_id2" >"$work/solo-cells-2.json"
sweep_cells "$coord" "$fleet_id2" >"$work/fleet-cells-2.json"
if ! cmp -s "$work/solo-cells-2.json" "$work/fleet-cells-2.json"; then
    echo "FAIL: post-kill fleet sweep cells differ from standalone:" >&2
    diff "$work/solo-cells-2.json" "$work/fleet-cells-2.json" >&2 || true
    exit 1
fi
# The kill is always detected, but if the sweep finished before the silence
# crossed dead-after the counter may tick a moment after wait_sweep: poll.
deaths=0
for _ in $(seq 1 30); do
    deaths=$(curl -fsS "$coord/metrics" | awk '$1 == "pdpad_fleet_node_deaths_total" {print int($2)}')
    [[ "$deaths" -ge 1 ]] && break
    sleep 0.1
done
requeues=$(curl -fsS "$coord/metrics" | awk '$1 == "pdpad_fleet_requeues_total" {print int($2)}')
if [[ "$deaths" -lt 1 ]]; then
    echo "FAIL: coordinator recorded no node death (deaths=$deaths)" >&2
    exit 1
fi
echo "   sweep survived the kill byte-identically (deaths=$deaths requeues=$requeues)"

echo "== phase 3: kill -9 the coordinator mid-sweep, restart on the same store"
# window_s 43200: a few hundred ms of compute per member, so 16 members
# keep the lone survivor busy for seconds — the kill lands with work in
# flight, not after the fact.
grid3='{"policies":["equip","pdpa"],"mixes":["w1","w2"],"loads":[0.6,0.8],"seeds":[7,8],"ncpu":32,"window_s":43200}'
solo_id3=$(submit_sweep "$solo" "$grid3")
fleet_id3=$(submit_sweep "$coord" "$grid3")
# Kill only once the sweep has real progress: with at least one member done
# and many still queued on the lone survivor, the restarted coordinator must
# adopt finished results AND resume the in-flight remainder.
done_members=0
poll_deadline=$((SECONDS + 30))
while [[ $SECONDS -lt $poll_deadline ]]; do
    done_members=$(curl -fsS -m 5 "$coord/v1/sweeps/$fleet_id3" | jq -r .done)
    [[ "${done_members:-0}" -ge 1 ]] && break
    sleep 0.01
done
if [[ "$done_members" -lt 1 ]]; then
    echo "FAIL: sweep $fleet_id3 made no progress before the coordinator kill" >&2
    exit 1
fi
kill -9 "$coord_pid"
wait "$coord_pid" 2>/dev/null || true
echo "   coordinator killed with $done_members/16 members done"
"$work/pdpad" "${coord_flags[@]}" >>"$work/coord.log" 2>&1 &
coord_pid=$!
pids+=($coord_pid)
wait_healthz "$coord" coord
for _ in $(seq 1 100); do
    healthy=$(curl -fsS "$coord/v1/nodes" |
        jq '[.nodes[] | select(.state == "healthy")] | length')
    [[ "$healthy" -ge 1 ]] && break
    sleep 0.1
done
if [[ "$healthy" -lt 1 ]]; then
    echo "FAIL: no node re-registered with the restarted coordinator" >&2
    curl -fsS "$coord/v1/nodes" | jq . >&2
    exit 1
fi
wait_sweep "$solo" "$solo_id3"
wait_sweep "$coord" "$fleet_id3" # the SAME sweep id, across the restart
sweep_cells "$solo" "$solo_id3" >"$work/solo-cells-3.json"
sweep_cells "$coord" "$fleet_id3" >"$work/fleet-cells-3.json"
if ! cmp -s "$work/solo-cells-3.json" "$work/fleet-cells-3.json"; then
    echo "FAIL: post-restart fleet sweep cells differ from standalone:" >&2
    diff "$work/solo-cells-3.json" "$work/fleet-cells-3.json" >&2 || true
    exit 1
fi
reconciled=$(curl -fsS "$coord/metrics" | awk '$1 == "pdpad_fleet_reconciled_runs_total" {print int($2)}')
if [[ "${reconciled:-0}" -lt 1 ]]; then
    echo "FAIL: restarted coordinator reconciled no runs (reconciled=${reconciled:-0})" >&2
    exit 1
fi
echo "   sweep survived the coordinator kill byte-identically (reconciled=$reconciled)"
# The restarted coordinator is a new process: re-baseline it once the
# re-registration and reconcile traffic has settled.
sleep 1
coord_base_goro=$(goroutines "$coord")

echo "== phase 4: goroutine hygiene + clean SIGTERM drain"
sleep 1 # let requeue traffic and SSE followers settle
coord_goro=$(goroutines "$coord")
node1_goro=$(goroutines "$node1")
# The baselines were taken right after (re-)registration; a handful of
# transient pooled-connection/heartbeat goroutines is normal, a per-run leak
# is not (phases 1-3 ran 40 members — a leak would show as tens of them).
if [[ $((coord_goro - coord_base_goro)) -gt 8 ]]; then
    echo "FAIL: coordinator leaked goroutines: $coord_base_goro -> $coord_goro" >&2
    exit 1
fi
if [[ $((node1_goro - node1_base_goro)) -gt 8 ]]; then
    echo "FAIL: node1 leaked goroutines: $node1_base_goro -> $node1_goro" >&2
    exit 1
fi
echo "   goroutines settled (coord $coord_base_goro->$coord_goro, node1 $node1_base_goro->$node1_goro)"

for name in node1 coord solo; do
    pid_var="${name}_pid"
    kill -TERM "${!pid_var}"
    rc=0
    wait "${!pid_var}" || rc=$?
    if [[ $rc -ne 0 ]]; then
        echo "FAIL: $name exited $rc on SIGTERM" >&2
        tail -n 20 "$work/$name.log" >&2
        exit 1
    fi
    grep -q "pdpad: bye" "$work/$name.log" || {
        echo "FAIL: $name log missing clean-shutdown marker" >&2
        exit 1
    }
done
pids=()

echo "fleetsmoke: identity, node-death failover, coordinator-death recovery, and clean drain all verified"
