package pdpasim

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunFacade(t *testing.T) {
	spec := WorkloadSpec{Mix: "w3", Load: 0.6, Seed: 1}
	out, err := RunContext(context.Background(), spec, Options{Policy: PDPA, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) == 0 {
		t.Fatal("no jobs")
	}
	for _, j := range out.Jobs {
		if j.Response < j.Execution {
			t.Fatalf("job %d response %v < execution %v", j.ID, j.Response, j.Execution)
		}
		if j.App == "" || j.AvgProcessors <= 0 {
			t.Fatalf("job %d incomplete: %+v", j.ID, j)
		}
	}
	if out.Makespan <= 0 || out.MaxMPL < 1 {
		t.Fatalf("outcome: %+v", out)
	}
	sum := out.Summary()
	for _, want := range []string{"PDPA", "bt.A", "apsi", "response"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestRunAllPolicies(t *testing.T) {
	spec := WorkloadSpec{Mix: "w1", Load: 0.6, Seed: 2}
	for _, p := range Policies() {
		out, err := RunContext(context.Background(), spec, Options{Policy: p, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if out.Policy == "" {
			t.Fatalf("%s: empty policy name", p)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := RunContext(context.Background(), WorkloadSpec{Mix: "bogus"}, Options{Policy: PDPA}); err == nil {
		t.Fatal("bogus mix accepted")
	}
	if _, err := RunContext(context.Background(), WorkloadSpec{Mix: "w1"}, Options{Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestWorkloadSpecValidateEdgeCases(t *testing.T) {
	good := WorkloadSpec{Mix: "w1", Load: 0.6}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, spec := range map[string]WorkloadSpec{
		"unknown mix":         {Mix: "w9"},
		"empty mix":           {},
		"negative load":       {Mix: "w1", Load: -0.1},
		"negative ncpu":       {Mix: "w1", NCPU: -60},
		"negative window":     {Mix: "w1", Window: -time.Second},
		"negative uniformreq": {Mix: "w1", UniformRequest: -30},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestOptionsValidateEdgeCases(t *testing.T) {
	if err := (Options{Policy: PDPA}).Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	inverted := DefaultPDPAParams()
	inverted.TargetEff, inverted.HighEff = 0.9, 0.7
	zeroTarget := DefaultPDPAParams()
	zeroTarget.TargetEff = 0
	badStep := DefaultPDPAParams()
	badStep.Step = 0
	badBase := DefaultPDPAParams()
	badBase.BaseMPL = 0
	for name, o := range map[string]Options{
		"unknown policy":            {Policy: "bogus"},
		"empty policy":              {},
		"negative fixed MPL":        {Policy: Equipartition, FixedMPL: -1},
		"negative NUMA node size":   {Policy: PDPA, NUMANodeSize: -4},
		"high_eff below target_eff": {Policy: PDPA, PDPA: inverted},
		"zero target_eff":           {Policy: PDPA, PDPA: zeroTarget},
		"zero step":                 {Policy: PDPA, PDPA: badStep},
		"zero base MPL":             {Policy: AdaptivePDPA, PDPA: badBase},
	} {
		if err := o.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// PDPA parameter consistency is only enforced for the policies that read
	// them; other regimes ignore the struct entirely.
	if err := (Options{Policy: Equipartition, PDPA: inverted}).Validate(); err != nil {
		t.Fatalf("unused PDPA params rejected for equipartition: %v", err)
	}
}

func TestWorkloadSpecDefaults(t *testing.T) {
	w, err := WorkloadSpec{Mix: "w2"}.build()
	if err != nil {
		t.Fatal(err)
	}
	if w.NCPU != 60 || w.TargetLoad != 1.0 {
		t.Fatalf("defaults: ncpu=%d load=%v", w.NCPU, w.TargetLoad)
	}
}

func TestUniformRequest(t *testing.T) {
	w, err := WorkloadSpec{Mix: "w3", UniformRequest: 30}.build()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if j.Request != 30 {
			t.Fatalf("request = %d", j.Request)
		}
	}
}

func TestWriteSWF(t *testing.T) {
	var buf bytes.Buffer
	if err := (WorkloadSpec{Mix: "w4", Load: 0.8, Seed: 3}).WriteSWF(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "; Version: 2") {
		t.Fatal("missing SWF header")
	}
}

func TestKeepTraceRendering(t *testing.T) {
	out, err := RunContext(context.Background(), WorkloadSpec{Mix: "w1", Load: 0.6, Seed: 4},
		Options{Policy: PDPA, Seed: 4, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	view := out.RenderTrace(60, 0, 60*time.Second)
	if !strings.Contains(view, "cpu00") {
		t.Fatalf("trace render missing rows: %q", view[:80])
	}
	// Without KeepTrace the render degrades gracefully.
	out2, err := RunContext(context.Background(), WorkloadSpec{Mix: "w1", Load: 0.6, Seed: 4}, Options{Policy: PDPA, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.RenderTrace(60, 0, 0), "not kept") {
		t.Fatal("missing KeepTrace hint")
	}
}

func TestOutcomeAccessors(t *testing.T) {
	out, err := RunContext(context.Background(), WorkloadSpec{Mix: "w2", Load: 0.6, Seed: 5}, Options{Policy: Equipartition, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.ResponseByApp()) == 0 || len(out.ExecutionByApp()) == 0 || len(out.ProcessorsByApp()) == 0 {
		t.Fatal("per-app accessors empty")
	}
	if len(out.MPLTimeline()) == 0 {
		t.Fatal("MPL timeline empty")
	}
}

func TestPDPAParamsPlumbing(t *testing.T) {
	lax := DefaultPDPAParams()
	lax.TargetEff = 0.4
	outLax, err := RunContext(context.Background(), WorkloadSpec{Mix: "w2", Load: 0.6, Seed: 6},
		Options{Policy: PDPA, PDPA: lax, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	outStrict, err := RunContext(context.Background(), WorkloadSpec{Mix: "w2", Load: 0.6, Seed: 6},
		Options{Policy: PDPA, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if outLax.ProcessorsByApp()["hydro2d"] <= outStrict.ProcessorsByApp()["hydro2d"] {
		t.Fatalf("lax target did not increase hydro allocation: %.1f vs %.1f",
			outLax.ProcessorsByApp()["hydro2d"], outStrict.ProcessorsByApp()["hydro2d"])
	}
}

func TestExperimentsFacade(t *testing.T) {
	exps := Experiments()
	if len(exps) < 12 {
		t.Fatalf("only %d experiments", len(exps))
	}
	text, err := RunExperiment("fig3", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "swim") {
		t.Fatal("fig3 report incomplete")
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestApplicationsFacade(t *testing.T) {
	apps := Applications()
	if len(apps) != 4 {
		t.Fatalf("apps = %d", len(apps))
	}
	s, err := Speedup("swim", 16)
	if err != nil || s <= 16 {
		t.Fatalf("swim S(16) = %v, %v (want superlinear)", s, err)
	}
	if _, err := Speedup("nope", 4); err == nil {
		t.Fatal("unknown app accepted")
	}
	d, err := DedicatedTime("bt.A", 30)
	if err != nil || d < 60*time.Second || d > 120*time.Second {
		t.Fatalf("bt dedicated = %v, %v", d, err)
	}
	if _, err := DedicatedTime("nope", 4); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestExtendedPoliciesRun(t *testing.T) {
	spec := WorkloadSpec{Mix: "w2", Load: 0.6, Seed: 12}
	for _, p := range ExtendedPolicies() {
		out, err := RunContext(context.Background(), spec, Options{Policy: p, Seed: 12})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(out.Jobs) == 0 {
			t.Fatalf("%s: no jobs", p)
		}
	}
}

func TestNUMAOptionRuns(t *testing.T) {
	out, err := RunContext(context.Background(), WorkloadSpec{Mix: "w3", Load: 0.6, Seed: 13},
		Options{Policy: PDPA, Seed: 13, NUMANodeSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) == 0 {
		t.Fatal("no jobs")
	}
}

func TestUntunedSpecRuns(t *testing.T) {
	spec := WorkloadSpec{Mix: "w3", Load: 0.6, Seed: 14, UniformRequest: 30}
	pd, err := RunContext(context.Background(), spec, Options{Policy: PDPA, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := RunContext(context.Background(), spec, Options{Policy: Equipartition, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	// The Table 3 headline: PDPA's response far better on the untuned mix.
	if pd.ResponseByApp()["apsi"] >= eq.ResponseByApp()["apsi"] {
		t.Fatalf("PDPA apsi response %v not better than Equip %v",
			pd.ResponseByApp()["apsi"], eq.ResponseByApp()["apsi"])
	}
}

func TestScorecardFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	out := Scorecard(ExperimentOptions{Quick: true})
	if !strings.Contains(out, "claims reproduced") {
		t.Fatalf("scorecard output incomplete: %q", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("scorecard has failures:\n%s", out)
	}
}

func TestRenderFigureSVGsFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("renders all figures")
	}
	dir := t.TempDir()
	n, err := RenderFigureSVGs(dir, ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("only %d charts", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("%d files for %d charts", len(entries), n)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("not an SVG")
	}
}

func TestRunSWFFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := (WorkloadSpec{Mix: "w3", Load: 0.6, Seed: 30}).WriteSWF(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := RunSWFContext(context.Background(), &buf, Options{Policy: PDPA, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) == 0 {
		t.Fatal("no jobs from SWF replay")
	}
	if _, err := RunSWFContext(context.Background(), strings.NewReader("garbage"), Options{Policy: PDPA}); err == nil {
		t.Fatal("garbage SWF accepted")
	}
}

func TestOutcomeExports(t *testing.T) {
	out, err := RunContext(context.Background(), WorkloadSpec{Mix: "w3", Load: 0.6, Seed: 31},
		Options{Policy: PDPA, Seed: 31, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var csv, js, prv bytes.Buffer
	if err := out.WriteCSV(&csv); err != nil || !strings.Contains(csv.String(), "response_s") {
		t.Fatalf("csv: %v", err)
	}
	if err := out.WriteJSON(&js); err != nil || !strings.Contains(js.String(), "\"policy\"") {
		t.Fatalf("json: %v", err)
	}
	if err := out.WriteParaver(&prv); err != nil || !strings.Contains(prv.String(), "#Paraver") {
		t.Fatalf("paraver: %v", err)
	}
	// Without KeepTrace, Paraver export must error cleanly.
	out2, err := RunContext(context.Background(), WorkloadSpec{Mix: "w3", Load: 0.6, Seed: 31}, Options{Policy: PDPA, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if err := out2.WriteParaver(&bytes.Buffer{}); err == nil {
		t.Fatal("paraver export without trace accepted")
	}
}
