package pdpasim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testSweepSpec() SweepSpec {
	return SweepSpec{
		Policies: []Policy{PDPA, Equipartition},
		Mixes:    []string{"w1"},
		Loads:    []float64{1.0},
		Seeds:    []int64{1, 2},
		NCPU:     32,
		Window:   60 * time.Second,
		Workers:  2,
	}
}

func TestSweepCells(t *testing.T) {
	res, err := Sweep(context.Background(), testSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(res.Cells))
	}
	if len(res.Runs) != 4 {
		t.Fatalf("expected 4 runs, got %d", len(res.Runs))
	}
	c := res.Cell(PDPA, "w1", 1.0)
	if c == nil {
		t.Fatal("PDPA cell missing")
	}
	if c.Makespan.N != 2 {
		t.Fatalf("cell aggregates %d replicates, want 2", c.Makespan.N)
	}
	if c.Makespan.Mean <= 0 || c.Utilization.Mean <= 0 {
		t.Fatalf("degenerate aggregates: %+v", c)
	}
	if len(c.Response) == 0 || len(c.Execution) == 0 {
		t.Fatal("per-app aggregates missing")
	}
	if res.Cell(IRIX, "w1", 1.0) != nil {
		t.Fatal("lookup invented a cell outside the grid")
	}
	// Each run carries the same schema as a single-run Outcome export.
	if res.Runs[0].Policy == "" || res.Runs[0].MakespanS <= 0 {
		t.Fatalf("run export malformed: %+v", res.Runs[0])
	}
}

func TestSweepWriteCSVAndJSON(t *testing.T) {
	res, err := Sweep(context.Background(), testSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if !strings.HasPrefix(lines[0], "policy,mix,load,n,app,response_s_mean") {
		t.Fatalf("unexpected CSV header: %s", lines[0])
	}
	// 2 cells × per-app rows (w1 has at least one application class).
	if len(lines) < 3 {
		t.Fatalf("CSV too short: %d lines", len(lines))
	}

	var jsonBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Cells []CellResult  `json:"cells"`
		Runs  []OutcomeJSON `json:"runs"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Cells) != 2 || len(decoded.Runs) != 4 {
		t.Fatalf("JSON round-trip lost data: %d cells, %d runs", len(decoded.Cells), len(decoded.Runs))
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// TestSweepCancellationMidGrid aborts a sweep from its own observer and
// expects prompt cancellation, not a completed grid.
func TestSweepCancellationMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := testSweepSpec()
	spec.Seeds = []int64{1, 2, 3, 4}
	var first atomic.Bool
	spec.Observer = ObserverFunc(func(e TraceEvent) {
		if first.CompareAndSwap(false, true) {
			cancel()
		}
	})
	res, err := Sweep(ctx, spec)
	if res != nil {
		t.Fatal("cancelled sweep returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

// TestSweepObserverIdentifiesRuns: the sweep_run event stream identifies
// every finished grid point and reports consistent totals.
func TestSweepObserverIdentifiesRuns(t *testing.T) {
	spec := testSweepSpec()
	var total atomic.Int32
	var sawPDPA atomic.Bool
	spec.Observer = ObserverFunc(func(e TraceEvent) {
		total.Add(1)
		if strings.HasPrefix(e.ID, "pdpa/w1/") {
			sawPDPA.Store(true)
		}
		if e.Kind != "sweep_run" || e.Total != 4 {
			t.Errorf("sweep event wrong: %+v", e)
		}
	})
	if _, err := Sweep(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 4 || !sawPDPA.Load() {
		t.Fatalf("observer fired %d times (sawPDPA=%v)", total.Load(), sawPDPA.Load())
	}
}

func TestSweepSpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SweepSpec)
	}{
		{"no policies", func(s *SweepSpec) { s.Policies = nil }},
		{"unknown policy", func(s *SweepSpec) { s.Policies = []Policy{"robin"} }},
		{"no mixes", func(s *SweepSpec) { s.Mixes = nil }},
		{"unknown mix", func(s *SweepSpec) { s.Mixes = []string{"w17"} }},
		{"negative load", func(s *SweepSpec) { s.Loads = []float64{-1} }},
		{"negative ncpu", func(s *SweepSpec) { s.NCPU = -60 }},
		{"negative window", func(s *SweepSpec) { s.Window = -time.Second }},
		{"negative uniform request", func(s *SweepSpec) { s.UniformRequest = -30 }},
		{"inconsistent pdpa params", func(s *SweepSpec) {
			s.PDPA = PDPAParams{TargetEff: 0.9, HighEff: 0.5, Step: 4, BaseMPL: 4}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testSweepSpec()
			tc.mutate(&spec)
			if err := spec.Validate(); err == nil {
				t.Fatal("invalid spec accepted by Validate")
			}
			if _, err := Sweep(context.Background(), spec); err == nil {
				t.Fatal("invalid spec accepted by Sweep")
			}
		})
	}
}
