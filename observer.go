package pdpasim

import (
	"io"

	"pdpasim/internal/obs"
)

// TraceEvent is one event of the unified observability stream: the schema of
// decision traces (Outcome.DecisionTrace), live observer callbacks
// (Options.Observer, SweepSpec.Observer), and the pdpad daemon's
// /v1/runs/{id}/trace endpoint and /events stream. Field use depends on
// Kind; see the obs package for the per-kind contract.
type TraceEvent = obs.ExportEvent

// Observer receives observability events. It is the one hook every layer
// accepts: RunContext streams a run's decision trace through it, Sweep
// streams per-run completions, and the pdpad run queue streams run lifecycle
// changes — three adapters over the same event schema.
//
// Observe is called synchronously from the producing loop (the simulation
// event loop for runs, the completion path for sweeps and the daemon):
// implementations must be fast and must not call back into the producer.
// An Observer used with Sweep or the daemon is called from multiple
// goroutines and must be safe for concurrent use; within one simulation run
// calls are strictly sequential and deterministic.
type Observer interface {
	Observe(TraceEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(TraceEvent)

// Observe implements Observer.
func (f ObserverFunc) Observe(e TraceEvent) { f(e) }

// DecisionTraceUnlimited makes Options.DecisionTrace retain every event.
const DecisionTraceUnlimited = -1

// DecisionTrace is a recorded decision trace: the ordered event stream
// explaining every scheduling decision of one run. Obtain one from
// Outcome.DecisionTrace after running with Options.DecisionTrace set.
//
// For a fixed seed the trace is byte-identical across runs: events are
// recorded from inside the single-threaded simulation event loop in
// (simulation time, record order), and the writers serialize
// deterministically.
type DecisionTrace struct {
	tr *obs.Trace
}

// Events returns the retained events in order; the i-th event has Seq i.
func (d *DecisionTrace) Events() []TraceEvent { return d.tr.Export() }

// Len returns the number of retained events.
func (d *DecisionTrace) Len() int { return d.tr.Len() }

// Dropped returns how many events exceeded the retention limit.
func (d *DecisionTrace) Dropped() int { return d.tr.Dropped() }

// CountKind returns how many retained events have the given kind (a
// TraceEvent.Kind string such as "policy_state" or "realloc").
func (d *DecisionTrace) CountKind(kind string) int {
	n := 0
	for _, e := range d.tr.Events() {
		if e.Kind.String() == kind {
			n++
		}
	}
	return n
}

// WriteJSON writes the trace as one indented JSON document
// ({"events": [...], "dropped": n}) — the same payload the pdpad daemon
// serves at /v1/runs/{id}/trace. Deterministic for a fixed seed.
func (d *DecisionTrace) WriteJSON(w io.Writer) error { return d.tr.WriteJSON(w) }

// WriteCSV writes the trace as CSV, one row per event.
func (d *DecisionTrace) WriteCSV(w io.Writer) error { return d.tr.WriteCSV(w) }

// WriteText renders the trace as human-readable decision-log lines (the
// format cmd/traceview -decisions prints).
func (d *DecisionTrace) WriteText(w io.Writer) error { return d.tr.WriteText(w) }

// newRunTrace builds the internal recorder for one run, or nil when
// observability is off. limit follows Options.DecisionTrace; observer may be
// nil.
func newRunTrace(limit int, observer Observer) *obs.Trace {
	if limit == 0 && observer == nil {
		return nil
	}
	var tr *obs.Trace
	switch {
	case limit > 0:
		tr = obs.NewTrace(limit)
	case limit == DecisionTraceUnlimited:
		tr = obs.NewTrace(0) // unlimited retention
	default:
		tr = obs.NewTrace(-1) // observer only: stream, retain nothing
	}
	if observer != nil {
		tr.SetSink(func(seq int, e obs.Event) { observer.Observe(obs.Export(seq, e)) })
	}
	return tr
}
