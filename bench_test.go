package pdpasim

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the artifact end to end (workload
// generation, full-system simulation under every policy it compares, and row
// formatting) and reports the artifact's headline numbers as custom metrics,
// so `go test -bench . -benchmem` both times the reproduction and prints the
// values to compare against the paper. Run with -v (or read
// EXPERIMENTS.md) for the full formatted tables.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"pdpasim/internal/app"
	"pdpasim/internal/cluster"
	"pdpasim/internal/experiments"
	"pdpasim/internal/obs"
	"pdpasim/internal/sim"
	"pdpasim/internal/system"
	"pdpasim/internal/workload"
)

// benchOpts keeps benchmark iterations affordable: one seed, the two
// extreme loads.
func benchOpts() experiments.Options { return experiments.Quick() }

func runExperiment(b *testing.B, run func(experiments.Options) (experiments.Result, error)) experiments.Result {
	b.Helper()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		b.Log("\n" + res.String())
	}
	return res
}

// classMetrics runs one workload mix at the given load under every policy
// and reports avg response times per policy as benchmark metrics.
func classMetrics(b *testing.B, mix workload.Mix, load float64, c app.Class, metricPrefix string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		w, err := workload.Generate(workload.GenConfig{
			Mix: mix, Load: load, NCPU: 60, Window: 300 * sim.Second, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, pk := range system.PolicyKinds() {
			res, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.ResponseByClass()[c], string(pk)+"_"+metricPrefix+"_resp_s")
			}
		}
	}
}

func BenchmarkFig3SpeedupCurves(b *testing.B) {
	res := runExperiment(b, experiments.Fig3)
	if !strings.Contains(res.Text, "swim") {
		b.Fatal("missing curves")
	}
	b.ReportMetric(app.ProfileFor(app.Swim).Speedup.Speedup(16), "swim_S16")
	b.ReportMetric(app.ProfileFor(app.BT).Speedup.Speedup(30), "bt_S30")
	b.ReportMetric(app.ProfileFor(app.Hydro2D).Speedup.Speedup(30), "hydro_S30")
	b.ReportMetric(app.ProfileFor(app.Apsi).Speedup.Speedup(30), "apsi_S30")
}

func BenchmarkTable1WorkloadCharacteristics(b *testing.B) {
	res := runExperiment(b, experiments.Table1)
	if !strings.Contains(res.Text, "w4") {
		b.Fatal("missing mixes")
	}
}

func BenchmarkFig4Workload1(b *testing.B) {
	runExperiment(b, experiments.Fig4)
}

func BenchmarkFig5TraceViews(b *testing.B) {
	res := runExperiment(b, experiments.Fig5)
	if !strings.Contains(res.Text, "cpu00") {
		b.Fatal("missing trace rows")
	}
}

func BenchmarkTable2Stability(b *testing.B) {
	var irixMig, pdpaMig float64
	for i := 0; i < b.N; i++ {
		w, err := workload.Generate(workload.GenConfig{
			Mix: workload.W1(), Load: 1.0, NCPU: 60, Window: 300 * sim.Second, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, pk := range []system.PolicyKind{system.IRIX, system.PDPA, system.Equipartition} {
			res, err := system.Run(system.Config{Workload: w, Policy: pk, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			switch pk {
			case system.IRIX:
				irixMig = float64(res.Stability.Migrations)
			case system.PDPA:
				pdpaMig = float64(res.Stability.Migrations)
			}
		}
	}
	b.ReportMetric(irixMig, "irix_migrations")
	b.ReportMetric(pdpaMig, "pdpa_migrations")
}

func BenchmarkFig6Workload2(b *testing.B) {
	runExperiment(b, experiments.Fig6)
}

func BenchmarkFig7MultiprogrammingLevels(b *testing.B) {
	runExperiment(b, experiments.Fig7)
}

func BenchmarkFig8MPLTimeline(b *testing.B) {
	res := runExperiment(b, experiments.Fig8)
	if !strings.Contains(res.Text, "max ML") {
		b.Fatal("missing timeline")
	}
}

func BenchmarkFig9Workload3(b *testing.B) {
	classMetrics(b, workload.W3(), 1.0, app.BT, "w3_bt")
}

func BenchmarkTable3UntunedApsi(b *testing.B) {
	runExperiment(b, experiments.Table3)
}

func BenchmarkFig10Workload4(b *testing.B) {
	classMetrics(b, workload.W4(), 0.8, app.Swim, "w4_swim")
}

func BenchmarkTable4UntunedWorkload4(b *testing.B) {
	runExperiment(b, experiments.Table4)
}

func BenchmarkAblationTargetEfficiency(b *testing.B) {
	runExperiment(b, experiments.AblationTargetEff)
}

func BenchmarkAblationStep(b *testing.B) {
	runExperiment(b, experiments.AblationStep)
}

func BenchmarkAblationNoise(b *testing.B) {
	runExperiment(b, experiments.AblationNoise)
}

// benchSweepSpec is the acceptance grid for the sweep engine: 4 policies ×
// 2 mixes × 2 seeds (16 runs, 8 cells).
func benchSweepSpec() SweepSpec {
	return SweepSpec{
		Policies: []Policy{IRIX, Equipartition, EqualEfficiency, PDPA},
		Mixes:    []string{"w1", "w3"},
		Loads:    []float64{1.0},
		Seeds:    []int64{1, 2},
		NCPU:     60,
		Window:   300 * time.Second,
	}
}

// BenchmarkSweep compares the parallel grid engine across worker counts on
// the 4-policy × 2-mix × 2-seed grid, against serial cell-by-cell execution
// through the single-run facade (which rebuilds the workload for every
// policy, as cmd/experiments used to).
func BenchmarkSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := benchSweepSpec()
				spec.Workers = workers
				if _, err := Sweep(context.Background(), spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("serial-cell-by-cell", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec := benchSweepSpec()
			for _, mix := range spec.Mixes {
				for _, load := range spec.Loads {
					for _, pol := range spec.Policies {
						for _, seed := range spec.Seeds {
							wspec := WorkloadSpec{
								Mix: mix, Load: load, NCPU: spec.NCPU,
								Window: spec.Window, Seed: seed,
							}
							opts := Options{Policy: pol, Seed: seed}
							if _, err := RunContext(context.Background(), wspec, opts); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
			}
		}
	})
}

// BenchmarkSingleRunPDPA times one full-system simulation (workload 4 at
// 100% load under PDPA) — the simulator's core throughput number.
func BenchmarkSingleRunPDPA(b *testing.B) {
	w, err := workload.Generate(workload.GenConfig{
		Mix: workload.W4(), Load: 1.0, NCPU: 60, Window: 300 * sim.Second, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := system.Run(system.Config{Workload: w, Policy: system.PDPA, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleRunPDPAReuse is BenchmarkSingleRunPDPA on one reused
// System: every run after the first recycles the engine heap, recorder,
// machine, queuing slabs, and per-job runtime state, so allocs/op here is
// the steady-state allocation count of the run path itself. The bench gate
// holds it near zero; the delta against SingleRunPDPA is the construction
// cost a fresh environment pays per run.
func BenchmarkSingleRunPDPAReuse(b *testing.B) {
	w, err := workload.Generate(workload.GenConfig{
		Mix: workload.W4(), Load: 1.0, NCPU: 60, Window: 300 * sim.Second, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sys := system.NewSystem()
	// Warm the arenas once so the timed loop measures steady state.
	if _, err := sys.Run(system.Config{Workload: w, Policy: system.PDPA, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(system.Config{Workload: w, Policy: system.PDPA, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepManyJobs pushes one sweep cell through more than a million
// simulated jobs: a w1 trace spanning an 8.4M-second window under PDPA in
// coarse throughput mode (stride 16). It validates that throughput mode
// plus arena reuse keep grid scaling affordable at four orders of magnitude
// more jobs than the paper's 300-second windows, and fails if the run ever
// completes fewer than a million jobs. Load is 0.8 rather than 1.0: a
// critically-loaded queue accumulates an O(sqrt(t)) backlog over a window
// this long and would spend an unbounded tail draining it.
func BenchmarkSweepManyJobs(b *testing.B) {
	var jobs int
	for i := 0; i < b.N; i++ {
		spec := SweepSpec{
			Policies:   []Policy{PDPA},
			Mixes:      []string{"w1"},
			Loads:      []float64{0.8},
			Seeds:      []int64{1},
			NCPU:       60,
			Window:     8_400_000 * time.Second,
			Workers:    1,
			Throughput: 16,
		}
		res, err := Sweep(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		jobs = 0
		for _, run := range res.Runs {
			jobs += len(run.Jobs)
		}
		if jobs < 1_000_000 {
			b.Fatalf("sweep simulated %d jobs, want >= 1000000", jobs)
		}
	}
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkSingleRunIRIX times the heaviest regime (per-quantum placement).
func BenchmarkSingleRunIRIX(b *testing.B) {
	w, err := workload.Generate(workload.GenConfig{
		Mix: workload.W1(), Load: 1.0, NCPU: 60, Window: 300 * sim.Second, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := system.Run(system.Config{Workload: w, Policy: system.IRIX, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObservedRunPDPA is BenchmarkSingleRunPDPA with decision tracing
// enabled in stream-only mode: the delta against SingleRunPDPA is the cost
// of the observability hooks when a trace is attached. The gated SingleRun*
// benchmarks run with tracing off, so the bench gate enforces that a nil
// trace stays free on the hot paths.
func BenchmarkObservedRunPDPA(b *testing.B) {
	w, err := workload.Generate(workload.GenConfig{
		Mix: workload.W4(), Load: 1.0, NCPU: 60, Window: 300 * sim.Second, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := system.Config{Workload: w, Policy: system.PDPA, Seed: 1, Trace: obs.NewTrace(-1)}
		if _, err := system.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMalleability(b *testing.B) {
	runExperiment(b, experiments.AblationMalleability)
}

func BenchmarkExtendedBaselines(b *testing.B) {
	runExperiment(b, experiments.ExtendedBaselines)
}

func BenchmarkMemoryStability(b *testing.B) {
	runExperiment(b, experiments.MemoryStability)
}

func BenchmarkMonitoringPath(b *testing.B) {
	runExperiment(b, experiments.MonitoringPath)
}

// BenchmarkScorecard times the full claim-verification sweep.
func BenchmarkScorecard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := Scorecard(ExperimentOptions{Quick: true})
		if !strings.Contains(out, "claims reproduced") {
			b.Fatal("scorecard incomplete")
		}
	}
}

// BenchmarkClusterRun times a 4-node coordinated cluster run.
func BenchmarkClusterRun(b *testing.B) {
	w, err := workload.Generate(workload.GenConfig{
		Mix: workload.W4(), Load: 0.8, NCPU: 64, Window: 300 * sim.Second, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(cluster.Config{
			Nodes: 4, CPUsPerNode: 16, Workload: w, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
