package pdpasim

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"pdpasim/internal/sim"
	"pdpasim/internal/sweep"
	"pdpasim/internal/system"
)

// SweepSpec describes a grid of simulations: every combination of the listed
// policies, mixes, loads, and seeds is run, and seed replicates are
// aggregated per (policy, mix, load) cell. The grid is the batch-first
// counterpart of one WorkloadSpec + Options pair: identical workload traces
// are generated once and replayed read-only under every policy, exactly as
// the paper's methodology replays one trace under each scheduler.
type SweepSpec struct {
	// Policies and Mixes are required; Loads defaults to {1.0} and Seeds to
	// {0}.
	Policies []Policy
	Mixes    []string
	Loads    []float64
	Seeds    []int64

	// NCPU, Window, and UniformRequest parameterize workload generation as
	// in WorkloadSpec (defaults: 60 CPUs, 300 s window).
	NCPU           int
	Window         time.Duration
	UniformRequest int

	// PDPA, FixedMPL, NoiseSigma, and NUMANodeSize configure each run as in
	// Options. Each run's noise seed is its workload seed, so a cell's
	// replicates differ in both trace and measurement noise.
	PDPA         PDPAParams
	FixedMPL     int
	NoiseSigma   float64
	NUMANodeSize int

	// Workers bounds the parallel worker pool; 0 means one worker per CPU
	// (never more than GOMAXPROCS). The result is byte-identical regardless
	// of the worker count.
	Workers int

	// Throughput > 1 enables coarse throughput mode for every run in the
	// grid, as in Options.Throughput: iterations are fused so very large
	// grids process far fewer events, with measurements sampled per fused
	// span — deterministic per seed, but not byte-equal to exact mode.
	Throughput int

	// Observer, when set, receives one "sweep_run" TraceEvent after every
	// completed run — the same Observer interface RunContext and the pdpad
	// daemon accept. The event's ID identifies the finished grid point
	// ("policy/mix/load/seed"), Done/Total report progress, and State is
	// "cell_done" when the run completed its cell's last replicate. Calls
	// are serialized but arrive in completion order.
	Observer Observer `json:"-"`
}

// CellResult is the aggregated result of one (policy, mix, load) cell:
// mean, standard deviation, and 95% confidence interval per metric across
// the seed replicates. It is the same schema the pdpad daemon's /v1/sweeps
// endpoint returns.
type CellResult = sweep.Cell

// CellAggregate is one aggregated metric inside a CellResult.
type CellAggregate = sweep.Aggregate

func (s SweepSpec) config() sweep.Config {
	policies := make([]system.PolicyKind, len(s.Policies))
	for i, p := range s.Policies {
		policies[i] = system.PolicyKind(p)
	}
	cfg := sweep.Config{
		Policies:       policies,
		Mixes:          append([]string(nil), s.Mixes...),
		Loads:          append([]float64(nil), s.Loads...),
		Seeds:          append([]int64(nil), s.Seeds...),
		NCPU:           s.NCPU,
		Window:         sim.FromSeconds(s.Window.Seconds()),
		UniformRequest: s.UniformRequest,
		FixedMPL:       s.FixedMPL,
		NoiseSigma:     s.NoiseSigma,
		NUMANodeSize:   s.NUMANodeSize,
		Workers:        s.Workers,
		Throughput:     s.Throughput,
	}
	if s.PDPA != (PDPAParams{}) {
		params := s.PDPA.internal()
		cfg.PDPAParams = &params
	}
	if observer := s.Observer; observer != nil {
		cfg.Progress = func(p sweep.Progress) {
			observer.Observe(sweepRunEvent(p))
		}
	}
	return cfg
}

// sweepRunEvent converts one sweep completion to its TraceEvent form. The
// grid-point ID is built with strconv appends rather than fmt — observers
// serialize the pool's workers, so the event path stays cheap.
func sweepRunEvent(p sweep.Progress) TraceEvent {
	id := make([]byte, 0, len(p.Task.Policy)+len(p.Task.Mix)+24)
	id = append(id, p.Task.Policy...)
	id = append(id, '/')
	id = append(id, p.Task.Mix...)
	id = append(id, '/')
	id = strconv.AppendFloat(id, p.Task.Load, 'f', 2, 64)
	id = append(id, '/')
	id = strconv.AppendInt(id, p.Task.Seed, 10)
	e := TraceEvent{
		Seq:   p.Done - 1,
		Kind:  "sweep_run",
		Job:   -1,
		ID:    string(id),
		Done:  p.Done,
		Total: p.Total,
	}
	if p.CellDone {
		e.State = "cell_done"
	}
	return e
}

// Validate checks the grid without running it: every policy and mix must be
// known and every numeric field non-negative.
func (s SweepSpec) Validate() error {
	for _, p := range s.Policies {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return s.config().Validate()
}

// Sweep runs the grid described by spec across a bounded worker pool and
// aggregates seed replicates per cell. The result is deterministic — byte-
// identical regardless of SweepSpec.Workers — because tasks are enumerated
// in a fixed order, results land by task index, and aggregation runs
// single-threaded after the pool drains. Cancelling ctx aborts in-flight
// simulations mid-event-loop and returns an error wrapping ctx.Err().
func Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res, err := sweep.Run(ctx, spec.config())
	if err != nil {
		return nil, err
	}
	return &SweepResult{Cells: res.Cells, Runs: res.Runs, res: res}, nil
}

// SweepResult is a completed sweep.
type SweepResult struct {
	// Cells holds one aggregated result per (policy, mix, load), in
	// mixes → loads → policies order.
	Cells []CellResult `json:"cells"`
	// Runs holds every individual run in grid order (each cell's seed
	// replicates are contiguous), in the same OutcomeJSON schema WriteJSON
	// and the daemon emit for single runs.
	Runs []OutcomeJSON `json:"runs"`

	res *sweep.Result
}

// Cell returns the aggregated cell for a (policy, mix, load) grid point, or
// nil if the point is not part of the grid.
func (r *SweepResult) Cell(policy Policy, mix string, load float64) *CellResult {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Policy == string(policy) && c.Mix == mix && c.Load == load {
			return c
		}
	}
	return nil
}

// WriteJSON writes the cells and runs as indented JSON.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes the aggregated grid as CSV in long format: one row per
// cell and application, carrying the per-application response/execution
// aggregates next to the cell-level metrics (the raw material of the
// paper's Table 2 and Fig. 6 comparisons).
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"policy", "mix", "load", "n", "app",
		"response_s_mean", "response_s_ci95",
		"execution_s_mean", "execution_s_ci95",
		"makespan_s_mean", "makespan_s_ci95",
		"avg_mpl_mean", "utilization_mean",
		"migrations_mean", "avg_burst_ms_mean",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.4f", v) }
	for _, c := range r.Cells {
		apps := make([]string, 0, len(c.Response))
		for app := range c.Response {
			apps = append(apps, app)
		}
		sort.Strings(apps)
		for _, app := range apps {
			row := []string{
				c.Policy, c.Mix, f(c.Load), fmt.Sprint(c.Makespan.N), app,
				f(c.Response[app].Mean), f(c.Response[app].CI95),
				f(c.Execution[app].Mean), f(c.Execution[app].CI95),
				f(c.Makespan.Mean), f(c.Makespan.CI95),
				f(c.AvgMPL.Mean), f(c.Utilization.Mean),
				f(c.Migrations.Mean), f(c.AvgBurstMS.Mean),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary renders one line per cell with the headline aggregates.
func (r *SweepResult) Summary() string {
	var sb strings.Builder
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%-13s %s load %3.0f%% (n=%d): makespan %6.0fs ±%.0f, avg ML %4.1f, util %3.0f%%\n",
			c.Policy, c.Mix, c.Load*100, c.Makespan.N,
			c.Makespan.Mean, c.Makespan.CI95, c.AvgMPL.Mean, c.Utilization.Mean*100)
	}
	return sb.String()
}
