package pdpasim

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pdpasim/internal/app"
	"pdpasim/internal/experiments"
	"pdpasim/internal/report"
)

// Experiment identifies one reproducible artifact of the paper's evaluation.
type Experiment struct {
	// ID is the artifact identifier: fig3..fig10, tab1..tab4, abl1..abl3.
	ID string
	// Title describes the artifact.
	Title string
}

// Experiments lists every reproducible table and figure in paper order.
func Experiments() []Experiment {
	specs := experiments.All()
	out := make([]Experiment, len(specs))
	for i, s := range specs {
		out[i] = Experiment{ID: s.ID, Title: s.Title}
	}
	return out
}

// ExperimentOptions tune experiment execution.
type ExperimentOptions struct {
	// Seeds are the workload seeds averaged over (default 1, 2, 3).
	Seeds []int64
	// Loads are the demand levels (default 60%, 80%, 100%).
	Loads []float64
	// Quick reduces seeds and loads for fast smoke runs.
	Quick bool
	// Workers bounds the worker pool the experiment grids fan out on
	// (0 = one worker per CPU). Results are identical at any setting.
	Workers int
}

func (o ExperimentOptions) internal() experiments.Options {
	if o.Quick {
		opts := experiments.Quick()
		opts.Workers = o.Workers
		return opts
	}
	return experiments.Options{Seeds: o.Seeds, Loads: o.Loads, Workers: o.Workers}
}

// RunExperiment regenerates one table or figure and returns its formatted
// reproduction.
func RunExperiment(id string, opts ExperimentOptions) (string, error) {
	spec, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	res, err := spec.Run(opts.internal())
	if err != nil {
		return "", err
	}
	return res.String(), nil
}

// Scorecard verifies every encoded paper claim against fresh simulation
// runs and returns the formatted pass/fail report — the programmatic answer
// to "does this repository still reproduce the paper?".
func Scorecard(opts ExperimentOptions) string {
	return report.Render(report.Scorecard(opts.internal()))
}

// RenderFigureSVGs regenerates the paper's figures as SVG line charts in
// dir (created if absent) and returns how many files were written.
func RenderFigureSVGs(dir string, opts ExperimentOptions) (int, error) {
	charts, err := experiments.Charts(opts.internal())
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	for _, fc := range charts {
		f, err := os.Create(filepath.Join(dir, fc.Name+".svg"))
		if err != nil {
			return 0, err
		}
		if err := fc.Chart.WriteSVG(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
	}
	return len(charts), nil
}

// Application describes one of the built-in application models.
type Application struct {
	Name string
	// Request is the tuned processor request the paper's submissions use.
	Request int
	// Iterations is the outer-loop iteration count.
	Iterations int
	// SerialIterationTime is one iteration's duration on one processor.
	SerialIterationTime time.Duration
}

// Applications returns the four calibrated application models of the
// evaluation (swim, bt.A, hydro2d, apsi).
func Applications() []Application {
	out := make([]Application, 0, app.NumClasses)
	for _, c := range app.AllClasses() {
		p := app.ProfileFor(c)
		out = append(out, Application{
			Name:                p.Name,
			Request:             p.Request,
			Iterations:          p.Iterations,
			SerialIterationTime: p.SerialIterationTime.Duration(),
		})
	}
	return out
}

// Speedup returns the true speedup of the named application at p processors
// (the Fig. 3 curves).
func Speedup(application string, p int) (float64, error) {
	for _, c := range app.AllClasses() {
		prof := app.ProfileFor(c)
		if prof.Name == application {
			return prof.Speedup.Speedup(p), nil
		}
	}
	return 0, fmt.Errorf("pdpasim: unknown application %q", application)
}

// DedicatedTime returns the named application's standalone execution time on
// procs processors of an otherwise idle machine.
func DedicatedTime(application string, procs int) (time.Duration, error) {
	for _, c := range app.AllClasses() {
		prof := app.ProfileFor(c)
		if prof.Name == application {
			return prof.DedicatedTime(procs).Duration(), nil
		}
	}
	return 0, fmt.Errorf("pdpasim: unknown application %q", application)
}
